// Wall-clock access for the whole library, in one place.
//
// Determinism contract: simulation results must be a pure function of
// (config, seed) — wall-clock reads are observability-only (trace
// timestamps, profile stage timings, manifest provenance) and must never
// feed back into RNG draws, event ordering, or stored results other than
// explicitly wall-clock-named fields. Concentrating every host-clock read
// behind this header keeps that auditable: `wtlint`'s determinism rules ban
// direct `std::chrono::*_clock::now()` / `time()` everywhere except
// wallclock.cc, so the allowlist is exactly one file.
//
// Naming convention (shared with wt::obs::MetricsRegistry): any metric or
// serialized field derived from these readings carries a "wall" marker in
// its name (".wall_ns" / ".wall_us" suffix, "wall_seconds" field) so
// byte-identical-output tests know what to exclude.

#ifndef WT_OBS_WALLCLOCK_H_
#define WT_OBS_WALLCLOCK_H_

#include <cstdint>
#include <string>

namespace wt {
namespace obs {

/// Monotonic (steady-clock) nanoseconds since an arbitrary process epoch.
/// Use for durations: WallNanos() - t0.
[[nodiscard]] int64_t WallNanos();

/// Monotonic microseconds since the same epoch as WallNanos().
[[nodiscard]] int64_t WallMicros();

/// Seconds elapsed since `t0_nanos` (a prior WallNanos() reading).
[[nodiscard]] double WallSecondsSince(int64_t t0_nanos);

/// Current UTC civil time as "YYYY-MM-DDTHH:MM:SSZ" (system clock; the one
/// non-monotonic reading — provenance stamps only).
[[nodiscard]] std::string UtcNowIso8601();

}  // namespace obs
}  // namespace wt

#endif  // WT_OBS_WALLCLOCK_H_
