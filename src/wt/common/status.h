// Status: lightweight error propagation for library code.
//
// Library code in the wind tunnel does not throw exceptions; fallible
// operations return a Status (or Result<T>, see result.h). The idiom follows
// RocksDB/Arrow: construct with a factory (Status::InvalidArgument(...)),
// test with ok(), propagate with WT_RETURN_IF_ERROR.

#ifndef WT_COMMON_STATUS_H_
#define WT_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace wt {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kAborted,
  kParseError,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A Status is either OK (the common, allocation-free case) or an error
/// carrying a code and a message. Cheap to move; copyable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories below.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The error code; kOk for a successful status.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for a successful status.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so copies are cheap; immutable after construction.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace wt

/// Propagates an error Status from the current function.
#define WT_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::wt::Status _wt_status = (expr);           \
    if (!_wt_status.ok()) return _wt_status;    \
  } while (0)

#endif  // WT_COMMON_STATUS_H_
