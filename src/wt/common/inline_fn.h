// InlineFn: a small-buffer-optimized, move-only `void()` callable.
//
// The DES hot path fires tens of millions of callbacks per run. With
// std::function every capture larger than the implementation's tiny SBO
// (typically 16 bytes — any lambda capturing [this, vector] already spills)
// costs a heap allocation on schedule and a free on fire. InlineFn widens
// the inline buffer to 48 bytes — enough for every scheduler lambda in this
// codebase (`[this]`, `[this, task-vector]`, copied std::function trampolines)
// — and being move-only it also accepts move-only captures (e.g. a moved-in
// std::vector), which std::function rejects outright.
//
// Oversized or over-aligned or throwing-move callables fall back to the
// heap transparently; the type erasure is a single static ops table, so
// invoking costs one indirect call — the same as std::function — with zero
// allocations in steady state.

#ifndef WT_COMMON_INLINE_FN_H_
#define WT_COMMON_INLINE_FN_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "wt/common/macros.h"

namespace wt {

class InlineFn {
 public:
  /// Inline capture budget. 48 bytes holds `this` plus a couple of vectors
  /// or a copied std::function; see the header comment.
  static constexpr size_t kInlineBytes = 48;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any `void()` callable. Stored inline when it fits (size,
  /// alignment, nothrow-move), heap-allocated otherwise.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  void operator()() {
    WT_DCHECK(ops_ != nullptr) << "invoking empty InlineFn";
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the wrapped callable lives in the inline buffer (test hook
  /// for the zero-allocation guarantee).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    // Moves the payload from `from` into the raw buffer `to`, leaving
    // `from` destroyed (caller clears its ops pointer).
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* storage);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* Inline(unsigned char* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static D*& HeapPtr(unsigned char* s) {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](unsigned char* s) { (*Inline<D>(s))(); },
      /*relocate=*/
      [](unsigned char* from, unsigned char* to) noexcept {
        ::new (static_cast<void*>(to)) D(std::move(*Inline<D>(from)));
        Inline<D>(from)->~D();
      },
      /*destroy=*/[](unsigned char* s) { Inline<D>(s)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](unsigned char* s) { (*HeapPtr<D>(s))(); },
      /*relocate=*/
      [](unsigned char* from, unsigned char* to) noexcept {
        ::new (static_cast<void*>(to)) D*(HeapPtr<D>(from));
      },
      /*destroy=*/[](unsigned char* s) { delete HeapPtr<D>(s); },
      /*inline_storage=*/false,
  };

  void MoveFrom(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace wt

#endif  // WT_COMMON_INLINE_FN_H_
