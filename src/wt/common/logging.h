// Minimal leveled logger. Logs go to stderr; the level is a process-wide
// setting so benchmarks can silence INFO chatter.

#ifndef WT_COMMON_LOGGING_H_
#define WT_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace wt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets / reads the process-wide minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wt

#define WT_LOG(level) \
  ::wt::internal::LogMessage(::wt::LogLevel::k##level, __FILE__, __LINE__)

#endif  // WT_COMMON_LOGGING_H_
