// Strict JSON reader (DESIGN.md §9).
//
// The tree has long had JSON *writers* (trace/metrics exporters, bench
// json) and a syntax-only checker (wt::obs::ValidateJson), but nothing
// that reads JSON back. Scenario files (scenarios/*.json) made a reader
// necessary; this is the project's ONE such parser — wtlint's
// scenario/single-parser rule keeps ad-hoc parsers from sprouting
// elsewhere. It is a strict RFC 8259 recursive-descent parser building a
// small DOM:
//
//  * strict: no comments, no trailing commas, no unquoted keys, exactly
//    one top-level value; errors carry line:column of the first violation;
//  * duplicate object keys are rejected (a scenario that sets "seed"
//    twice is a bug, not a last-writer-wins surprise);
//  * object key order is PRESERVED (ObjectKeys) so scenario hashing and
//    error messages are stable, while lookup stays O(log n);
//  * numbers are held as double plus an exact-int64 flag, matching the
//    store's Value model (wt/store/value.h).
//
// Depth is bounded (kMaxJsonDepth) so a hostile file cannot overflow the
// stack. Inputs are small (scenario files, golden reports), so the DOM
// favors clarity over allocation thrift.

#ifndef WT_COMMON_JSON_H_
#define WT_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wt/common/result.h"
#include "wt/common/status.h"

namespace wt {
namespace json {

/// Nesting bound for arrays/objects; deeper input is a parse error.
inline constexpr int kMaxJsonDepth = 64;

enum class JsonKind {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

const char* JsonKindToString(JsonKind kind);

/// One JSON value. Copyable; a parsed document is a tree of these.
class JsonValue {
 public:
  /// Constructs null.
  JsonValue() = default;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Int(int64_t i);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  JsonKind kind() const { return kind_; }
  bool is_null() const { return kind_ == JsonKind::kNull; }
  bool is_bool() const { return kind_ == JsonKind::kBool; }
  bool is_number() const { return kind_ == JsonKind::kNumber; }
  bool is_string() const { return kind_ == JsonKind::kString; }
  bool is_array() const { return kind_ == JsonKind::kArray; }
  bool is_object() const { return kind_ == JsonKind::kObject; }

  /// True iff the value is a number that was written as an integer and
  /// fits int64 exactly (no fraction, no exponent-induced rounding).
  bool is_int() const { return kind_ == JsonKind::kNumber && exact_int_; }

  /// Typed accessors; each requires the matching kind() (checked).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;  // requires is_int()
  const std::string& AsString() const;

  // --- arrays ---
  size_t size() const;  // array: element count; object: member count
  const JsonValue& At(size_t i) const;          // array element (checked)
  void Append(JsonValue v);                     // array only

  // --- objects ---
  bool Has(const std::string& key) const;
  /// The member value, or nullptr if absent. Object only.
  const JsonValue* Find(const std::string& key) const;
  /// Member keys in file order (insertion order).
  const std::vector<std::string>& ObjectKeys() const;
  /// Adds a member; returns false (and ignores the write) on duplicate.
  bool Insert(const std::string& key, JsonValue v);

  /// Canonical single-line serialization (keys in file order, shortest
  /// round-trip doubles). Parse(Serialize(v)) == v.
  std::string Serialize() const;

 private:
  JsonKind kind_ = JsonKind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool exact_int_ = false;
  int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  // Key order preserved separately from the lookup map.
  std::vector<std::string> keys_;
  std::map<std::string, JsonValue> obj_;
};

/// Parses exactly one JSON value (plus surrounding whitespace).
/// Errors are Status::ParseError with "line:col: message".
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

}  // namespace json
}  // namespace wt

#endif  // WT_COMMON_JSON_H_
