// Small string helpers used across the library (no external deps).

#ifndef WT_COMMON_STRING_UTIL_H_
#define WT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "wt/common/result.h"

namespace wt {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// Lower-cases ASCII letters.
std::string StrToLower(std::string_view s);

/// True if `s` starts with / ends with `prefix` / `suffix`.
bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// Strict parses; the whole string must be consumed.
[[nodiscard]] Result<double> ParseDouble(std::string_view s);
[[nodiscard]] Result<long long> ParseInt(std::string_view s);
[[nodiscard]] Result<bool> ParseBool(std::string_view s);

}  // namespace wt

#endif  // WT_COMMON_STRING_UTIL_H_
