#include "wt/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace wt {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::ParseError("empty number");
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: '" + buf + "'");
  }
  return v;
}

Result<long long> ParseInt(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::ParseError("empty number");
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: '" + buf + "'");
  }
  return v;
}

Result<bool> ParseBool(std::string_view s) {
  std::string v = StrToLower(StrTrim(s));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::ParseError("invalid bool: '" + v + "'");
}

}  // namespace wt
