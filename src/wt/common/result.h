// Result<T>: a value or an error Status (cf. arrow::Result / rocksdb's
// Status+out-param, but with the value carried in-band).

#ifndef WT_COMMON_RESULT_H_
#define WT_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "wt/common/macros.h"
#include "wt/common/status.h"

namespace wt {

/// Holds either a T (success) or an error Status. Accessing the value of an
/// error Result aborts the process (programming error), so callers must
/// check ok() first or use WT_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    WT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// The error status (OK if the result holds a value).
  [[nodiscard]] const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    WT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    WT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    WT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wt

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may be a declaration.
#define WT_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  WT_ASSIGN_OR_RETURN_IMPL(                                  \
      WT_MACRO_CONCAT(_wt_result_, __LINE__), lhs, rexpr)

#define WT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#endif  // WT_COMMON_RESULT_H_
