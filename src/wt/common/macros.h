// Assertion and utility macros.

#ifndef WT_COMMON_MACROS_H_
#define WT_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#define WT_MACRO_CONCAT_INNER(a, b) a##b
#define WT_MACRO_CONCAT(a, b) WT_MACRO_CONCAT_INNER(a, b)

namespace wt {
namespace internal {

// Collects a streamed message and aborts on destruction. Used by WT_CHECK.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace wt

/// Aborts with a message if `cond` is false. Active in all build modes:
/// checks guard invariants whose violation would corrupt simulation results.
#define WT_CHECK(cond)                                              \
  if (cond)                                                         \
    ::wt::internal::NullStream();                                   \
  else                                                              \
    ::wt::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define WT_DCHECK(cond) WT_CHECK(cond)
#else
#define WT_DCHECK(cond) \
  if (true)             \
    ::wt::internal::NullStream();  \
  else                  \
    ::wt::internal::NullStream()
#endif

#endif  // WT_COMMON_MACROS_H_
