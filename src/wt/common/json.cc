#include "wt/common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "wt/common/macros.h"
#include "wt/common/string_util.h"

namespace wt {
namespace json {

const char* JsonKindToString(JsonKind kind) {
  switch (kind) {
    case JsonKind::kNull:   return "null";
    case JsonKind::kBool:   return "bool";
    case JsonKind::kNumber: return "number";
    case JsonKind::kString: return "string";
    case JsonKind::kArray:  return "array";
    case JsonKind::kObject: return "object";
  }
  return "?";
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = JsonKind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = JsonKind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = JsonKind::kNumber;
  v.num_ = static_cast<double>(i);
  v.exact_int_ = true;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = JsonKind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = JsonKind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = JsonKind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  WT_CHECK(is_bool()) << "AsBool on " << JsonKindToString(kind_);
  return bool_;
}

double JsonValue::AsDouble() const {
  WT_CHECK(is_number()) << "AsDouble on " << JsonKindToString(kind_);
  return num_;
}

int64_t JsonValue::AsInt() const {
  WT_CHECK(is_int()) << "AsInt on non-integer " << JsonKindToString(kind_);
  return int_;
}

const std::string& JsonValue::AsString() const {
  WT_CHECK(is_string()) << "AsString on " << JsonKindToString(kind_);
  return str_;
}

size_t JsonValue::size() const {
  if (kind_ == JsonKind::kArray) return arr_.size();
  if (kind_ == JsonKind::kObject) return keys_.size();
  return 0;
}

const JsonValue& JsonValue::At(size_t i) const {
  WT_CHECK(is_array()) << "At on " << JsonKindToString(kind_);
  WT_CHECK(i < arr_.size()) << "index " << i << " >= " << arr_.size();
  return arr_[i];
}

void JsonValue::Append(JsonValue v) {
  WT_CHECK(is_array()) << "Append on " << JsonKindToString(kind_);
  arr_.push_back(std::move(v));
}

bool JsonValue::Has(const std::string& key) const {
  return is_object() && obj_.count(key) > 0;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

const std::vector<std::string>& JsonValue::ObjectKeys() const {
  WT_CHECK(is_object()) << "ObjectKeys on " << JsonKindToString(kind_);
  return keys_;
}

bool JsonValue::Insert(const std::string& key, JsonValue v) {
  WT_CHECK(is_object()) << "Insert on " << JsonKindToString(kind_);
  if (obj_.count(key) > 0) return false;
  keys_.push_back(key);
  obj_.emplace(key, std::move(v));
  return true;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':  out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  // Shortest representation that round-trips (to_chars general form).
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  WT_CHECK(ec == std::errc()) << "to_chars failed";
  out->append(buf, end);
}

void SerializeTo(const JsonValue& v, std::string* out);

void SerializeTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonKind::kNull:
      out->append("null");
      break;
    case JsonKind::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case JsonKind::kNumber:
      if (v.is_int()) {
        out->append(std::to_string(v.AsInt()));
      } else {
        AppendNumber(v.AsDouble(), out);
      }
      break;
    case JsonKind::kString:
      AppendEscaped(v.AsString(), out);
      break;
    case JsonKind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out->push_back(',');
        SerializeTo(v.At(i), out);
      }
      out->push_back(']');
      break;
    }
    case JsonKind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const std::string& key : v.ObjectKeys()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        SerializeTo(*v.Find(key), out);
      }
      out->push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over the raw bytes. Tracks line/column for
/// error messages; depth for the nesting bound.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    WT_RETURN_IF_ERROR(ParseValue(0, &v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after top-level value");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%d:%d: %s", line_, Column(), msg.c_str()));
  }

  int Column() const {
    return static_cast<int>(pos_ - line_start_) + 1;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(StrFormat("expected '%c'", c));
    }
    Advance();
    return Status::OK();
  }

  Status ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error(StrFormat("invalid literal (expected '%s')",
                             std::string(word).c_str()));
    }
    for (size_t i = 0; i < word.size(); ++i) Advance();
    return Status::OK();
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxJsonDepth) {
      return Error(StrFormat("nesting deeper than %d", kMaxJsonDepth));
    }
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(depth, out);
      case '[': return ParseArray(depth, out);
      case '"': return ParseString(out);
      case 't':
        WT_RETURN_IF_ERROR(ParseLiteral("true"));
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        WT_RETURN_IF_ERROR(ParseLiteral("false"));
        *out = JsonValue::Bool(false);
        return Status::OK();
      case 'n':
        WT_RETURN_IF_ERROR(ParseLiteral("null"));
        *out = JsonValue::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    WT_RETURN_IF_ERROR(Expect('{'));
    *out = JsonValue::Object();
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') {
        return Error("expected '\"' to start object key");
      }
      JsonValue key;
      WT_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      WT_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      JsonValue member;
      WT_RETURN_IF_ERROR(ParseValue(depth + 1, &member));
      if (!out->Insert(key.AsString(), std::move(member))) {
        return Error(
            StrFormat("duplicate object key \"%s\"", key.AsString().c_str()));
      }
      SkipWs();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == '}') {
        Advance();
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    WT_RETURN_IF_ERROR(Expect('['));
    *out = JsonValue::Array();
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue element;
      WT_RETURN_IF_ERROR(ParseValue(depth + 1, &element));
      out->Append(std::move(element));
      SkipWs();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == ']') {
        Advance();
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  /// Appends `cp` (a Unicode code point) as UTF-8.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Error("unterminated \\u escape");
      const char c = Peek();
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      value = value * 16 + digit;
      Advance();
    }
    *out = value;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    WT_RETURN_IF_ERROR(Expect('"'));
    std::string s;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = Peek();
      if (c == '"') {
        Advance();
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        s.push_back(c);
        Advance();
        continue;
      }
      Advance();  // backslash
      if (AtEnd()) return Error("unterminated escape");
      const char esc = Peek();
      Advance();
      switch (esc) {
        case '"':  s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/':  s.push_back('/'); break;
        case 'b':  s.push_back('\b'); break;
        case 'f':  s.push_back('\f'); break;
        case 'n':  s.push_back('\n'); break;
        case 'r':  s.push_back('\r'); break;
        case 't':  s.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          WT_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (AtEnd() || Peek() != '\\') {
              return Error("unpaired high surrogate");
            }
            Advance();
            if (AtEnd() || Peek() != 'u') {
              return Error("unpaired high surrogate");
            }
            Advance();
            uint32_t low = 0;
            WT_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &s);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') Advance();
    // Integer part: "0" or [1-9][0-9]*.
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      Advance();
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      Advance();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digit after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("expected digit in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') Advance();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      int64_t i = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        *out = JsonValue::Int(i);
        return Status::OK();
      }
      // Integer syntax but out of int64 range: fall through to double.
    }
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        !std::isfinite(d)) {
      return Error("number out of range");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t line_start_ = 0;
};

}  // namespace

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace json
}  // namespace wt
