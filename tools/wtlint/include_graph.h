// wtlint's whole-program project model: the include graph.
//
// Single-file token rules cannot see cross-file failure modes — dependency
// cycles, layering inversions (sim/ reaching into serve/), a second JSON
// parser growing in a leaf. This module parses every `#include "..."`
// directive in the scanned file set, resolves it against the project's
// include roots (src/ for "wt/..." paths, the repo root for "tools/...",
// the including file's own directory for local includes), maps files to
// modules (src/wt/<module>/...), and checks two structural invariants:
//
//   deps/include-cycle    the file-level include graph must be acyclic;
//                         every cycle is reported once, with the full
//                         offending path a.h -> b.h -> ... -> a.h
//   deps/layer-back-edge  module-level edges must point strictly downward
//                         in the committed layering DAG
//                         (tools/wtlint/layers.json): rank(includee) <
//                         rank(includer). Same-rank cross-module edges are
//                         back-edges too (peer modules stay independent),
//                         and src/wt code may never include scan-root code
//                         (tools/, bench/, examples/, fuzz/).
//   deps/unknown-module   a src/wt/<module>/ file whose module is missing
//                         from layers.json: the DAG must be maintained
//                         alongside the tree.
//
// Includes inside preprocessor conditionals count unconditionally: an edge
// that exists in any configuration is an edge the layering must license
// (a gated back-edge is still a back-edge when the gate flips).
//
// Unresolvable quoted includes (system headers, third-party) are ignored:
// the graph covers exactly the files handed to Analyze().

#ifndef WT_TOOLS_WTLINT_INCLUDE_GRAPH_H_
#define WT_TOOLS_WTLINT_INCLUDE_GRAPH_H_

#include <string>
#include <vector>

#include "tools/wtlint/lexer.h"
#include "wt/common/result.h"

namespace wt {
namespace wtlint {

struct Finding;
struct FileInput;

/// The layering DAG: layers[i] lists the modules at rank i; edges must
/// point strictly downward in rank. Compiled-in default == the committed
/// tools/wtlint/layers.json (wtlint_test diffs the two).
struct LayerConfig {
  std::vector<std::vector<std::string>> layers;
};

/// The DAG the tree is held to (mirrors tools/wtlint/layers.json).
[[nodiscard]] LayerConfig DefaultLayerConfig();

/// Parses a layers.json document ({"layers": [["common"], ...]}; a
/// top-level "comment" member is ignored). Malformed input is an error —
/// wtlint exits 2 (internal), it does not report findings, for a broken
/// config.
[[nodiscard]] Result<LayerConfig> ParseLayersJson(std::string_view text);

/// Module of a root-relative path: "src/wt/<m>/..." -> "<m>"; anything
/// else (tools/, bench/, examples/, fuzz/, generated TUs) -> "" — a
/// scan-root file, above every layer.
[[nodiscard]] std::string ModuleOf(const std::string& path);

/// Builds the include graph over `files` (parallel-indexed by `lexed`) and
/// appends deps/ findings to per_file_findings[i] for the *including*
/// file i — cycle findings anchor at the include directive that closes the
/// cycle, layering findings at the offending #include line.
void CheckDependencies(const std::vector<FileInput>& files,
                       const std::vector<LexedFile>& lexed,
                       const LayerConfig& layer_config,
                       std::vector<std::vector<Finding>>* per_file_findings);

}  // namespace wtlint
}  // namespace wt

#endif  // WT_TOOLS_WTLINT_INCLUDE_GRAPH_H_
