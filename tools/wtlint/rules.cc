#include "tools/wtlint/rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

#include "wt/common/string_util.h"
#include "tools/wtlint/lexer.h"

namespace wt {
namespace wtlint {

namespace {

// Rule ids. The family is everything before '/'.
constexpr const char* kRawRandom = "determinism/raw-random";
constexpr const char* kWallClock = "determinism/wall-clock";
constexpr const char* kSleep = "determinism/sleep";
constexpr const char* kStdFunction = "hotpath/std-function";
constexpr const char* kThrow = "hotpath/throw";
constexpr const char* kDynamicCast = "hotpath/dynamic-cast";
constexpr const char* kIostream = "hotpath/iostream";
constexpr const char* kNodiscard = "error/nodiscard-status";
constexpr const char* kDroppedStatus = "error/dropped-status";
constexpr const char* kUsingNamespace = "hygiene/using-namespace-header";
constexpr const char* kIncludeGuard = "hygiene/include-guard";
constexpr const char* kUnorderedSer = "hygiene/unordered-serialization";
constexpr const char* kBadSuppression = "hygiene/bad-suppression";
constexpr const char* kUnusedSuppression = "hygiene/unused-suppression";
constexpr const char* kBuilderName = "scenario/builder-name";
constexpr const char* kSingleParser = "scenario/single-parser";

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return StrEndsWith(path, suffix);
}

bool PathStartsWithAny(const std::string& path,
                       const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (StrStartsWith(path, p)) return true;
  }
  return false;
}

bool IsHeader(const std::string& path) { return StrEndsWith(path, ".h"); }

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Shared scan state for one file.
struct FileCtx {
  const FileInput* file = nullptr;
  const LexedFile* lexed = nullptr;
  bool determinism_exempt = false;
  bool hot = false;
  bool serialization = false;
  bool scenario = false;
  bool json_parser_exempt = false;
  std::vector<Finding>* findings = nullptr;

  void Add(const char* rule, int line, std::string message,
           size_t fix_offset = static_cast<size_t>(-1)) const {
    Finding f;
    f.rule = rule;
    f.file = file->path;
    f.line = line;
    f.message = std::move(message);
    f.fix_offset = fix_offset;
    findings->push_back(std::move(f));
  }
};

// True if tokens[i] names a function being *called*: the next token is '('
// and the previous token is neither a member access, a non-std qualifier,
// nor an identifier (which would make this a declaration like
// `SimTime time(x)`).
bool IsCallPosition(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ".") ||
      (prev.kind == TokKind::kPunct && prev.text == ">" && i >= 2 &&
       IsPunct(toks[i - 2], "-"))) {
    return false;  // member call on some object: x.time(), x->rand()
  }
  if (prev.kind == TokKind::kIdent) {
    // `return time(0)` is a call; `SimTime time(x)` is a declaration.
    return prev.text == "return" || prev.text == "co_return";
  }
  if (IsPunct(prev, "::")) {
    // Qualified: banned only when the qualifier is std (or the global
    // namespace, `::time(...)`).
    if (i < 2) return true;
    const Token& qual = toks[i - 2];
    return IsIdent(qual, "std") || qual.kind != TokKind::kIdent;
  }
  return true;
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const FileCtx& ctx) {
  if (ctx.determinism_exempt) return;
  const std::vector<Token>& toks = ctx.lexed->tokens;
  static const std::set<std::string> kRandomIdents = {
      "random_device", "random_shuffle", "drand48", "lrand48", "mrand48",
      "getrandom"};
  static const std::set<std::string> kRandomCalls = {"rand", "srand",
                                                     "srandom"};
  static const std::set<std::string> kClockCalls = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime", "localtime_r", "gmtime_r", "ftime"};
  static const std::set<std::string> kSleepIdents = {"sleep_for",
                                                     "sleep_until"};
  static const std::set<std::string> kSleepCalls = {"usleep", "nanosleep",
                                                    "sleep"};
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (kRandomIdents.count(t.text) != 0) {
      ctx.Add(kRawRandom, t.line,
              t.text + ": all randomness must flow through a named "
                       "wt::RngStream (seed, run_id, replicate)");
      continue;
    }
    if (kRandomCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      ctx.Add(kRawRandom, t.line,
              t.text + "(): all randomness must flow through a named "
                       "wt::RngStream");
      continue;
    }
    if (StrEndsWith(t.text, "_clock") && i + 2 < toks.size() &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2], "now")) {
      ctx.Add(kWallClock, t.line,
              t.text + "::now(): read wall time via wt/obs/wallclock.h");
      continue;
    }
    if (kClockCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      ctx.Add(kWallClock, t.line,
              t.text + "(): read wall time via wt/obs/wallclock.h");
      continue;
    }
    if (kSleepIdents.count(t.text) != 0 ||
        (kSleepCalls.count(t.text) != 0 && IsCallPosition(toks, i))) {
      ctx.Add(kSleep, t.line,
              t.text + ": simulated time never needs host sleeps; use "
                       "Simulator::Schedule");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// hotpath
// ---------------------------------------------------------------------------

void CheckHotPath(const FileCtx& ctx) {
  if (!ctx.hot) return;
  const std::vector<Token>& toks = ctx.lexed->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc) {
      for (const char* banned :
           {"<iostream>", "<ostream>", "<istream>", "<sstream>", "<fstream>",
            "<iomanip>"}) {
        if (t.text.find("include") != std::string::npos &&
            t.text.find(banned) != std::string::npos) {
          ctx.Add(kIostream, t.line,
                  std::string(banned) +
                      " in a hot file: stream formatting allocates and "
                      "locks; use logging.h or report via wt::obs");
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "function" && i >= 1 && IsPunct(toks[i - 1], "::") &&
        i >= 2 && IsIdent(toks[i - 2], "std")) {
      ctx.Add(kStdFunction, t.line,
              "std::function in a hot file: event callbacks must use "
              "wt::InlineFn (allocation-free, see common/inline_fn.h)");
      continue;
    }
    if (t.text == "throw") {
      ctx.Add(kThrow, t.line,
              "throw in a hot file: the DES kernel is exception-free; "
              "return Status/Result instead");
      continue;
    }
    if (t.text == "dynamic_cast") {
      ctx.Add(kDynamicCast, t.line,
              "dynamic_cast in a hot file: RTTI dispatch on the event path; "
              "use an explicit tag or visitor");
      continue;
    }
    if ((t.text == "cout" || t.text == "cerr" || t.text == "clog") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std")) {
      ctx.Add(kIostream, t.line,
              "std::" + t.text + " in a hot file: use logging.h or wt::obs");
    }
  }
}

// ---------------------------------------------------------------------------
// error-handling
// ---------------------------------------------------------------------------

const std::set<std::string>& DeclSpecifiers() {
  static const std::set<std::string> kSpecs = {
      "static", "virtual", "inline",  "constexpr", "consteval",
      "explicit", "friend", "extern", "const",     "mutable"};
  return kSpecs;
}

// Skips a balanced <...> group starting at toks[i] == "<". Returns the index
// one past the closing ">", or `i` if unbalanced.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "<")) {
      ++depth;
    } else if (IsPunct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{")) {
      break;  // never balanced; bail out
    }
  }
  return i;
}

// Scans one header for Status/Result-returning declarations. Adds
// error/nodiscard-status findings and collects declared function names into
// `status_fns`.
void ScanStatusDecls(const FileCtx& ctx, bool report,
                     std::set<std::string>* status_fns) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  size_t decl_start = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc || IsPunct(t, ";") || IsPunct(t, "{") ||
        IsPunct(t, "}")) {
      decl_start = i + 1;
      continue;
    }
    if (IsPunct(t, ":") && i >= 1 &&
        (IsIdent(toks[i - 1], "public") || IsIdent(toks[i - 1], "private") ||
         IsIdent(toks[i - 1], "protected"))) {
      decl_start = i + 1;
      continue;
    }
    const bool is_status = IsIdent(t, "Status");
    const bool is_result = IsIdent(t, "Result");
    if (!is_status && !is_result) continue;

    // Backward validation: decl_start .. i must be only attributes,
    // decl-specifiers, a template prefix, and a namespace qualification.
    size_t j = decl_start;
    bool saw_nodiscard = false;
    bool ok_prefix = true;
    // Where --fix-nodiscard inserts: the decl start, or just after a
    // template<...> clause (an attribute may not precede one).
    size_t insert_at = toks[decl_start].offset;
    while (j < i) {
      if (IsPunct(toks[j], "[") && j + 1 < i && IsPunct(toks[j + 1], "[")) {
        size_t k = j + 2;
        int closes = 0;
        while (k < i && closes < 2) {
          if (IsIdent(toks[k], "nodiscard")) saw_nodiscard = true;
          closes = IsPunct(toks[k], "]") ? closes + 1 : 0;
          ++k;
        }
        j = k;
        continue;
      }
      if (toks[j].kind == TokKind::kIdent &&
          DeclSpecifiers().count(toks[j].text) != 0) {
        ++j;
        continue;
      }
      if (IsIdent(toks[j], "template") && j + 1 < i &&
          IsPunct(toks[j + 1], "<")) {
        const size_t after = SkipAngles(toks, j + 1);
        if (after == j + 1 || after > i) {
          ok_prefix = false;
          break;
        }
        j = after;
        if (j <= i) insert_at = toks[j == i ? i : j].offset;
        continue;
      }
      // Namespace qualification directly before the type: (ident ::)+
      if (toks[j].kind == TokKind::kIdent && j + 1 < i &&
          IsPunct(toks[j + 1], "::")) {
        j += 2;
        continue;
      }
      ok_prefix = false;
      break;
    }
    if (!ok_prefix || j != i) continue;

    // Forward validation: [<...>] [&*const]* name[::name]* '('
    size_t k = i + 1;
    if (is_result) {
      if (k >= toks.size() || !IsPunct(toks[k], "<")) continue;
      const size_t after = SkipAngles(toks, k);
      if (after == k) continue;
      k = after;
    }
    while (k < toks.size() &&
           (IsPunct(toks[k], "&") || IsPunct(toks[k], "*") ||
            IsIdent(toks[k], "const"))) {
      ++k;
    }
    if (k >= toks.size() || toks[k].kind != TokKind::kIdent) continue;
    std::string name = toks[k].text;
    while (k + 2 < toks.size() && IsPunct(toks[k + 1], "::") &&
           toks[k + 2].kind == TokKind::kIdent) {
      k += 2;
      name = toks[k].text;
    }
    if (k + 1 >= toks.size() || !IsPunct(toks[k + 1], "(")) continue;

    status_fns->insert(name);
    if (report && !saw_nodiscard) {
      ctx.Add(kNodiscard, t.line,
              name + "() returns " + (is_result ? "Result" : "Status") +
                  " but is not [[nodiscard]]; a dropped error is a silent "
                  "one (--fix-nodiscard can insert it)",
              insert_at);
    }
  }
}

// Flags `(void)Call(...)` drops of known Status/Result-returning functions.
void CheckDroppedStatus(const FileCtx& ctx,
                        const std::set<std::string>& status_fns) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(IsPunct(toks[i], "(") && IsIdent(toks[i + 1], "void") &&
          IsPunct(toks[i + 2], ")"))) {
      continue;
    }
    // Walk the casted expression: identifiers joined by :: . -> up to a '('.
    size_t k = i + 3;
    std::string last_ident;
    while (k < toks.size()) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kIdent) {
        last_ident = t.text;
        ++k;
        continue;
      }
      if (IsPunct(t, "::") || IsPunct(t, ".")) {
        ++k;
        continue;
      }
      if (IsPunct(t, "-") && k + 1 < toks.size() && IsPunct(toks[k + 1], ">")) {
        k += 2;
        continue;
      }
      break;
    }
    if (k >= toks.size() || !IsPunct(toks[k], "(") || last_ident.empty()) {
      continue;
    }
    if (status_fns.count(last_ident) == 0) continue;
    ctx.Add(kDroppedStatus, toks[i].line,
            "(void)" + last_ident + "(...) drops a Status/Result; handle "
            "it, WT_CHECK it, or suppress with a reason");
  }
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (StrStartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard;
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  if (!StrStartsWith(guard, "WT_")) guard = "WT_" + guard;
  return guard;
}

void CheckHygiene(const FileCtx& ctx) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  const bool header = IsHeader(ctx.file->path);

  if (header) {
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (IsIdent(toks[i], "using") && IsIdent(toks[i + 1], "namespace")) {
        ctx.Add(kUsingNamespace, toks[i].line,
                "using namespace in a header leaks into every includer");
      }
    }

    // Include guard: the first two directives must be the derived
    // #ifndef/#define pair.
    const std::string expected = ExpectedGuard(ctx.file->path);
    std::vector<const Token*> directives;
    for (const Token& t : toks) {
      if (t.kind == TokKind::kPreproc) directives.push_back(&t);
      if (directives.size() >= 2) break;
    }
    bool guard_ok = false;
    if (directives.size() >= 2) {
      const std::vector<std::string> ifndef =
          StrSplit(std::string(StrTrim(directives[0]->text)), ' ');
      const std::vector<std::string> define =
          StrSplit(std::string(StrTrim(directives[1]->text)), ' ');
      guard_ok = ifndef.size() >= 2 && define.size() >= 2 &&
                 StrStartsWith(ifndef[0], "#") &&
                 ifndef[0].find("ifndef") != std::string::npos &&
                 define[0].find("define") != std::string::npos &&
                 ifndef[1] == expected && define[1] == expected;
      // Tolerate "#ifndef" split as "#" "ifndef" (rare formatting).
    }
    if (!guard_ok) {
      ctx.Add(kIncludeGuard, 1,
              "header must open with '#ifndef " + expected + "' / '#define " +
                  expected + "' (guard name is derived from the path)");
    }
  }

  if (ctx.serialization) {
    for (const Token& t : toks) {
      if (t.kind == TokKind::kIdent &&
          (t.text == "unordered_map" || t.text == "unordered_set" ||
           t.text == "unordered_multimap" || t.text == "unordered_multiset")) {
        ctx.Add(kUnorderedSer, t.line,
                "std::" + t.text + " in a serialization layer: iteration "
                "order is nondeterministic; use std::map/set or sort before "
                "emitting");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// scenario
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// The naming contract for registered builders: lowercase snake_case, no
// leading/trailing or doubled underscores.
bool IsSnakeCase(std::string_view s) {
  if (s.empty() || s.front() < 'a' || s.front() > 'z' || s.back() == '_') {
    return false;
  }
  for (char c : s) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return s.find("__") == std::string_view::npos;
}

struct BuilderReg {
  std::string family;
  std::string name;
  int line = 0;
};

// Extracts literal `Register("family", "name"` registrations from raw
// source text. Raw, not the token stream, because the lexer drops string
// contents; a whitespace-tolerant matcher, because clang-format wraps the
// argument list across lines. Commented-out registrations count too —
// delete dead registrations, don't comment them out.
std::vector<BuilderReg> ExtractBuilderRegs(const std::string& src) {
  std::vector<BuilderReg> regs;
  auto skip_ws = [&](size_t k) {
    while (k < src.size() &&
           std::isspace(static_cast<unsigned char>(src[k])) != 0) {
      ++k;
    }
    return k;
  };
  auto read_string = [&](size_t k, std::string* out) -> size_t {
    // Returns one past the closing quote, or 0 if not a plain "..." literal.
    if (k >= src.size() || src[k] != '"') return 0;
    for (size_t e = k + 1; e < src.size() && src[e] != '\n'; ++e) {
      if (src[e] == '\\') return 0;  // escapes never appear in builder ids
      if (src[e] == '"') {
        *out = src.substr(k + 1, e - k - 1);
        return e + 1;
      }
    }
    return 0;
  };
  constexpr std::string_view kWord = "Register";
  int line = 1;
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      ++line;
      continue;
    }
    if (src.compare(i, kWord.size(), kWord) != 0) continue;
    if (i > 0 && IsIdentChar(src[i - 1])) continue;
    size_t k = i + kWord.size();
    if (k < src.size() && IsIdentChar(src[k])) continue;  // RegisterFoo(...)
    k = skip_ws(k);
    if (k >= src.size() || src[k] != '(') continue;
    BuilderReg reg;
    reg.line = line;
    k = read_string(skip_ws(k + 1), &reg.family);
    if (k == 0) continue;  // first argument is not a string literal
    k = skip_ws(k);
    if (k >= src.size() || src[k] != ',') continue;
    if (read_string(skip_ws(k + 1), &reg.name) == 0) continue;
    regs.push_back(std::move(reg));
    // Keep scanning from i + 1 so the newline counter stays in sync; the
    // matched span cannot contain another registration start.
  }
  return regs;
}

// builder_sites maps "family/name" -> "file:line" of the first
// registration, accumulated across every scanned file so collisions are
// caught no matter which translation unit re-registers the name.
void CheckScenario(const FileCtx& ctx,
                   std::map<std::string, std::string>* builder_sites) {
  if (ctx.scenario) {
    for (const BuilderReg& reg : ExtractBuilderRegs(ctx.file->content)) {
      bool named_ok = true;
      for (const std::string& part : {reg.family, reg.name}) {
        if (!IsSnakeCase(part)) {
          ctx.Add(kBuilderName, reg.line,
                  "builder id '" + reg.family + "/" + reg.name +
                      "': '" + part + "' is not snake_case "
                      "([a-z][a-z0-9_]*, no trailing or doubled '_')");
          named_ok = false;
        }
      }
      const std::string id = reg.family + "/" + reg.name;
      const std::string site =
          ctx.file->path + ":" + std::to_string(reg.line);
      auto [it, inserted] = builder_sites->emplace(id, site);
      if (!inserted && named_ok) {
        ctx.Add(kBuilderName, reg.line,
                "duplicate builder '" + id + "': first registered at " +
                    it->second);
      }
    }
  }

  if (!ctx.json_parser_exempt) {
    for (const Token& t : ctx.lexed->tokens) {
      if (t.kind == TokKind::kIdent && t.text == "ParseJson") {
        ctx.Add(kSingleParser, t.line,
                "ParseJson outside wt/common and wt/scenario: the strict "
                "JSON reader is the only scenario-file parser; load files "
                "via scenario::LoadScenarioFile");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// suppression application
// ---------------------------------------------------------------------------

bool RuleMatches(const std::string& pattern, const std::string& rule) {
  if (pattern == rule) return true;
  // Family pattern: "determinism" matches "determinism/x".
  return rule.size() > pattern.size() && rule[pattern.size()] == '/' &&
         StrStartsWith(rule, pattern);
}

bool KnownRuleOrFamily(const std::string& pattern) {
  static const std::set<std::string> kKnown = {
      kRawRandom,    kWallClock,      kSleep,          kStdFunction,
      kThrow,        kDynamicCast,    kIostream,       kNodiscard,
      kDroppedStatus, kUsingNamespace, kIncludeGuard,  kUnorderedSer,
      kBadSuppression, kUnusedSuppression, kBuilderName, kSingleParser,
      "determinism", "hotpath", "error", "hygiene", "scenario"};
  return kKnown.count(pattern) != 0;
}

void ApplySuppressions(const FileCtx& ctx, std::vector<Finding>* all,
                       size_t first_finding) {
  std::vector<bool> used(ctx.lexed->suppressions.size(), false);
  for (size_t fi = first_finding; fi < all->size(); ++fi) {
    Finding& f = (*all)[fi];
    if (f.file != ctx.file->path) continue;
    for (size_t si = 0; si < ctx.lexed->suppressions.size(); ++si) {
      const Suppression& sup = ctx.lexed->suppressions[si];
      if (sup.malformed || sup.target_line != f.line) continue;
      for (const std::string& pattern : sup.rules) {
        if (RuleMatches(pattern, f.rule)) {
          f.suppressed = true;
          f.suppress_reason = sup.reason;
          used[si] = true;
          break;
        }
      }
      if (f.suppressed) break;
    }
  }
  for (size_t si = 0; si < ctx.lexed->suppressions.size(); ++si) {
    const Suppression& sup = ctx.lexed->suppressions[si];
    if (sup.malformed) {
      ctx.Add(kBadSuppression, sup.comment_line,
              "wtlint suppression needs 'allow(<rule>) -- <reason>' with a "
              "non-empty reason");
      continue;
    }
    for (const std::string& pattern : sup.rules) {
      if (!KnownRuleOrFamily(pattern)) {
        ctx.Add(kBadSuppression, sup.comment_line,
                "unknown rule '" + pattern + "' in suppression");
      }
    }
    if (!used[si]) {
      ctx.Add(kUnusedSuppression, sup.comment_line,
              "suppression matched no finding; delete it (allow(" +
                  StrJoin(sup.rules, ", ") + "))");
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

AnalysisResult Analyze(const std::vector<FileInput>& files,
                       const Config& config) {
  AnalysisResult result;
  result.files_scanned = static_cast<int>(files.size());

  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const FileInput& f : files) lexed.push_back(Lex(f.content));

  auto make_ctx = [&](size_t i) {
    FileCtx ctx;
    ctx.file = &files[i];
    ctx.lexed = &lexed[i];
    ctx.findings = &result.findings;
    for (const std::string& suffix : config.determinism_allowlist) {
      if (PathEndsWith(files[i].path, suffix)) ctx.determinism_exempt = true;
    }
    ctx.hot = PathStartsWithAny(files[i].path, config.hot_paths);
    ctx.serialization =
        PathStartsWithAny(files[i].path, config.serialization_paths);
    ctx.scenario = PathStartsWithAny(files[i].path, config.scenario_paths);
    ctx.json_parser_exempt =
        PathStartsWithAny(files[i].path, config.json_parser_allowlist);
    return ctx;
  };

  // Pass 1: headers, to learn which function names return Status/Result.
  std::set<std::string> status_fns;
  for (size_t i = 0; i < files.size(); ++i) {
    if (!IsHeader(files[i].path)) continue;
    FileCtx ctx = make_ctx(i);
    ScanStatusDecls(ctx, /*report=*/true, &status_fns);
  }

  // Pass 2: everything else, then per-file suppression resolution. Files
  // arrive sorted by path, so the "first registered at" site recorded for
  // each builder id is deterministic.
  std::map<std::string, std::string> builder_sites;
  for (size_t i = 0; i < files.size(); ++i) {
    FileCtx ctx = make_ctx(i);
    const size_t first = [&] {
      // Findings for this file may already exist from pass 1; suppressions
      // must see those too, so start from the earliest.
      for (size_t fi = 0; fi < result.findings.size(); ++fi) {
        if (result.findings[fi].file == files[i].path) return fi;
      }
      return result.findings.size();
    }();
    CheckDeterminism(ctx);
    CheckHotPath(ctx);
    CheckDroppedStatus(ctx, status_fns);
    CheckHygiene(ctx);
    CheckScenario(ctx, &builder_sites);
    ApplySuppressions(ctx, &result.findings, first);
  }

  // Deterministic report order regardless of rule execution order.
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return result;
}

std::string ResultToJson(const AnalysisResult& result) {
  int unsuppressed = 0;
  int suppressed = 0;
  for (const Finding& f : result.findings) {
    (f.suppressed ? suppressed : unsuppressed)++;
  }
  std::string out = "{\n";
  out += StrFormat("  \"tool\": \"wtlint\",\n  \"version\": 1,\n");
  out += StrFormat("  \"files_scanned\": %d,\n", result.files_scanned);
  out += StrFormat("  \"unsuppressed\": %d,\n", unsuppressed);
  out += StrFormat("  \"suppressed\": %d,\n", suppressed);
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (f.suppressed) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"message\": \"%s\"}",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.message).c_str());
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"suppressions\": [";
  first = true;
  for (const Finding& f : result.findings) {
    if (!f.suppressed) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"reason\": \"%s\"}",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.suppress_reason).c_str());
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string ResultToText(const AnalysisResult& result) {
  std::string out;
  int unsuppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) continue;
    ++unsuppressed;
    out += StrFormat("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
  }
  out += StrFormat("wtlint: %d file(s), %d finding(s)\n",
                   result.files_scanned, unsuppressed);
  return out;
}

std::string ApplyNodiscardFixes(const std::string& path,
                                const std::string& content,
                                const std::vector<Finding>& findings) {
  std::vector<size_t> offsets;
  for (const Finding& f : findings) {
    if (f.file == path && f.rule == kNodiscard && !f.suppressed &&
        f.fix_offset != static_cast<size_t>(-1)) {
      offsets.push_back(f.fix_offset);
    }
  }
  std::sort(offsets.rbegin(), offsets.rend());
  std::string out = content;
  for (size_t off : offsets) {
    if (off <= out.size()) out.insert(off, "[[nodiscard]] ");
  }
  return out;
}

}  // namespace wtlint
}  // namespace wt
