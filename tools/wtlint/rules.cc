#include "tools/wtlint/rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

#include "tools/wtlint/lexer.h"
#include "wt/common/string_util.h"
#include "wt/core/thread_pool.h"

namespace wt {
namespace wtlint {

namespace {

// Rule ids. The family is everything before '/'.
constexpr const char* kRawRandom = "determinism/raw-random";
constexpr const char* kWallClock = "determinism/wall-clock";
constexpr const char* kSleep = "determinism/sleep";
constexpr const char* kStdFunction = "hotpath/std-function";
constexpr const char* kThrow = "hotpath/throw";
constexpr const char* kDynamicCast = "hotpath/dynamic-cast";
constexpr const char* kIostream = "hotpath/iostream";
constexpr const char* kNodiscard = "error/nodiscard-status";
constexpr const char* kDroppedStatus = "error/dropped-status";
constexpr const char* kUsingNamespace = "hygiene/using-namespace-header";
constexpr const char* kIncludeGuard = "hygiene/include-guard";
constexpr const char* kUnorderedSer = "hygiene/unordered-serialization";
constexpr const char* kBadSuppression = "hygiene/bad-suppression";
constexpr const char* kUnusedSuppression = "hygiene/unused-suppression";
constexpr const char* kBuilderName = "scenario/builder-name";
constexpr const char* kSingleParser = "scenario/single-parser";
constexpr const char* kImplicitSeqCst = "concurrency/implicit-seq-cst";
constexpr const char* kManualLock = "concurrency/manual-lock";
constexpr const char* kRawThread = "concurrency/raw-thread";
constexpr const char* kThreadDetach = "concurrency/thread-detach";
constexpr const char* kUnorderedSink = "determinism-flow/unordered-sink";

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return StrEndsWith(path, suffix);
}

bool PathStartsWithAny(const std::string& path,
                       const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (StrStartsWith(path, p)) return true;
  }
  return false;
}

bool IsHeader(const std::string& path) { return StrEndsWith(path, ".h"); }

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Shared scan state for one file. Findings go into the file's own buffer
// so per-file checks can run concurrently (Analyze merges in path order).
struct FileCtx {
  const FileInput* file = nullptr;
  const LexedFile* lexed = nullptr;
  bool determinism_exempt = false;
  bool hot = false;
  bool serialization = false;
  bool scenario = false;
  bool json_parser_exempt = false;
  bool atomic_order_scoped = false;
  bool raw_thread_allowed = false;
  std::vector<Finding>* findings = nullptr;

  void Add(const char* rule, int line, std::string message,
           size_t fix_offset = static_cast<size_t>(-1)) const {
    Finding f;
    f.rule = rule;
    f.file = file->path;
    f.line = line;
    f.message = std::move(message);
    f.fix_offset = fix_offset;
    findings->push_back(std::move(f));
  }
};

// True if tokens[i] names a function being *called*: the next token is '('
// and the previous token is neither a member access, a non-std qualifier,
// nor an identifier (which would make this a declaration like
// `SimTime time(x)`).
bool IsCallPosition(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ".") ||
      (prev.kind == TokKind::kPunct && prev.text == ">" && i >= 2 &&
       IsPunct(toks[i - 2], "-"))) {
    return false;  // member call on some object: x.time(), x->rand()
  }
  if (prev.kind == TokKind::kIdent) {
    // `return time(0)` is a call; `SimTime time(x)` is a declaration.
    return prev.text == "return" || prev.text == "co_return";
  }
  if (IsPunct(prev, "::")) {
    // Qualified: banned only when the qualifier is std (or the global
    // namespace, `::time(...)`).
    if (i < 2) return true;
    const Token& qual = toks[i - 2];
    return IsIdent(qual, "std") || qual.kind != TokKind::kIdent;
  }
  return true;
}

// True if tokens[i] is the method of a member call: `x.name(` / `x->name(`.
bool IsMemberCall(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent) return false;
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ".")) return true;
  return prev.kind == TokKind::kPunct && prev.text == ">" && i >= 2 &&
         IsPunct(toks[i - 2], "-");
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const FileCtx& ctx) {
  if (ctx.determinism_exempt) return;
  const std::vector<Token>& toks = ctx.lexed->tokens;
  static const std::set<std::string> kRandomIdents = {
      "random_device", "random_shuffle", "drand48", "lrand48", "mrand48",
      "getrandom"};
  static const std::set<std::string> kRandomCalls = {"rand", "srand",
                                                     "srandom"};
  static const std::set<std::string> kClockCalls = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime", "localtime_r", "gmtime_r", "ftime"};
  static const std::set<std::string> kSleepIdents = {"sleep_for",
                                                     "sleep_until"};
  static const std::set<std::string> kSleepCalls = {"usleep", "nanosleep",
                                                    "sleep"};
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (kRandomIdents.count(t.text) != 0) {
      ctx.Add(kRawRandom, t.line,
              t.text + ": all randomness must flow through a named "
                       "wt::RngStream (seed, run_id, replicate)");
      continue;
    }
    if (kRandomCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      ctx.Add(kRawRandom, t.line,
              t.text + "(): all randomness must flow through a named "
                       "wt::RngStream");
      continue;
    }
    if (StrEndsWith(t.text, "_clock") && i + 2 < toks.size() &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2], "now")) {
      ctx.Add(kWallClock, t.line,
              t.text + "::now(): read wall time via wt/obs/wallclock.h");
      continue;
    }
    if (kClockCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      ctx.Add(kWallClock, t.line,
              t.text + "(): read wall time via wt/obs/wallclock.h");
      continue;
    }
    if (kSleepIdents.count(t.text) != 0 ||
        (kSleepCalls.count(t.text) != 0 && IsCallPosition(toks, i))) {
      ctx.Add(kSleep, t.line,
              t.text + ": simulated time never needs host sleeps; use "
                       "Simulator::Schedule");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// hotpath
// ---------------------------------------------------------------------------

void CheckHotPath(const FileCtx& ctx) {
  if (!ctx.hot) return;
  const std::vector<Token>& toks = ctx.lexed->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc) {
      for (const char* banned :
           {"<iostream>", "<ostream>", "<istream>", "<sstream>", "<fstream>",
            "<iomanip>"}) {
        if (t.text.find("include") != std::string::npos &&
            t.text.find(banned) != std::string::npos) {
          ctx.Add(kIostream, t.line,
                  std::string(banned) +
                      " in a hot file: stream formatting allocates and "
                      "locks; use logging.h or report via wt::obs");
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "function" && i >= 1 && IsPunct(toks[i - 1], "::") &&
        i >= 2 && IsIdent(toks[i - 2], "std")) {
      ctx.Add(kStdFunction, t.line,
              "std::function in a hot file: event callbacks must use "
              "wt::InlineFn (allocation-free, see common/inline_fn.h)");
      continue;
    }
    if (t.text == "throw") {
      ctx.Add(kThrow, t.line,
              "throw in a hot file: the DES kernel is exception-free; "
              "return Status/Result instead");
      continue;
    }
    if (t.text == "dynamic_cast") {
      ctx.Add(kDynamicCast, t.line,
              "dynamic_cast in a hot file: RTTI dispatch on the event path; "
              "use an explicit tag or visitor");
      continue;
    }
    if ((t.text == "cout" || t.text == "cerr" || t.text == "clog") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std")) {
      ctx.Add(kIostream, t.line,
              "std::" + t.text + " in a hot file: use logging.h or wt::obs");
    }
  }
}

// ---------------------------------------------------------------------------
// error-handling
// ---------------------------------------------------------------------------

const std::set<std::string>& DeclSpecifiers() {
  static const std::set<std::string> kSpecs = {
      "static", "virtual", "inline",  "constexpr", "consteval",
      "explicit", "friend", "extern", "const",     "mutable"};
  return kSpecs;
}

// Skips a balanced <...> group starting at toks[i] == "<". Returns the index
// one past the closing ">", or `i` if unbalanced.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "<")) {
      ++depth;
    } else if (IsPunct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{")) {
      break;  // never balanced; bail out
    }
  }
  return i;
}

// Scans one header for Status/Result-returning declarations. Adds
// error/nodiscard-status findings and collects declared function names into
// `status_fns`.
void ScanStatusDecls(const FileCtx& ctx, bool report,
                     std::set<std::string>* status_fns) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  size_t decl_start = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc || IsPunct(t, ";") || IsPunct(t, "{") ||
        IsPunct(t, "}")) {
      decl_start = i + 1;
      continue;
    }
    if (IsPunct(t, ":") && i >= 1 &&
        (IsIdent(toks[i - 1], "public") || IsIdent(toks[i - 1], "private") ||
         IsIdent(toks[i - 1], "protected"))) {
      decl_start = i + 1;
      continue;
    }
    const bool is_status = IsIdent(t, "Status");
    const bool is_result = IsIdent(t, "Result");
    if (!is_status && !is_result) continue;

    // Backward validation: decl_start .. i must be only attributes,
    // decl-specifiers, a template prefix, and a namespace qualification.
    size_t j = decl_start;
    bool saw_nodiscard = false;
    bool ok_prefix = true;
    // Where --fix-nodiscard inserts: the decl start, or just after a
    // template<...> clause (an attribute may not precede one).
    size_t insert_at = toks[decl_start].offset;
    while (j < i) {
      if (IsPunct(toks[j], "[") && j + 1 < i && IsPunct(toks[j + 1], "[")) {
        size_t k = j + 2;
        int closes = 0;
        while (k < i && closes < 2) {
          if (IsIdent(toks[k], "nodiscard")) saw_nodiscard = true;
          closes = IsPunct(toks[k], "]") ? closes + 1 : 0;
          ++k;
        }
        j = k;
        continue;
      }
      if (toks[j].kind == TokKind::kIdent &&
          DeclSpecifiers().count(toks[j].text) != 0) {
        ++j;
        continue;
      }
      if (IsIdent(toks[j], "template") && j + 1 < i &&
          IsPunct(toks[j + 1], "<")) {
        const size_t after = SkipAngles(toks, j + 1);
        if (after == j + 1 || after > i) {
          ok_prefix = false;
          break;
        }
        j = after;
        if (j <= i) insert_at = toks[j == i ? i : j].offset;
        continue;
      }
      // Namespace qualification directly before the type: (ident ::)+
      if (toks[j].kind == TokKind::kIdent && j + 1 < i &&
          IsPunct(toks[j + 1], "::")) {
        j += 2;
        continue;
      }
      ok_prefix = false;
      break;
    }
    if (!ok_prefix || j != i) continue;

    // Forward validation: [<...>] [&*const]* name[::name]* '('
    size_t k = i + 1;
    if (is_result) {
      if (k >= toks.size() || !IsPunct(toks[k], "<")) continue;
      const size_t after = SkipAngles(toks, k);
      if (after == k) continue;
      k = after;
    }
    while (k < toks.size() &&
           (IsPunct(toks[k], "&") || IsPunct(toks[k], "*") ||
            IsIdent(toks[k], "const"))) {
      ++k;
    }
    if (k >= toks.size() || toks[k].kind != TokKind::kIdent) continue;
    std::string name = toks[k].text;
    while (k + 2 < toks.size() && IsPunct(toks[k + 1], "::") &&
           toks[k + 2].kind == TokKind::kIdent) {
      k += 2;
      name = toks[k].text;
    }
    if (k + 1 >= toks.size() || !IsPunct(toks[k + 1], "(")) continue;

    status_fns->insert(name);
    if (report && !saw_nodiscard) {
      ctx.Add(kNodiscard, t.line,
              name + "() returns " + (is_result ? "Result" : "Status") +
                  " but is not [[nodiscard]]; a dropped error is a silent "
                  "one (--fix-nodiscard can insert it)",
              insert_at);
    }
  }
}

// Flags `(void)Call(...)` drops of known Status/Result-returning functions.
void CheckDroppedStatus(const FileCtx& ctx,
                        const std::set<std::string>& status_fns) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(IsPunct(toks[i], "(") && IsIdent(toks[i + 1], "void") &&
          IsPunct(toks[i + 2], ")"))) {
      continue;
    }
    // Walk the casted expression: identifiers joined by :: . -> up to a '('.
    size_t k = i + 3;
    std::string last_ident;
    while (k < toks.size()) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kIdent) {
        last_ident = t.text;
        ++k;
        continue;
      }
      if (IsPunct(t, "::") || IsPunct(t, ".")) {
        ++k;
        continue;
      }
      if (IsPunct(t, "-") && k + 1 < toks.size() && IsPunct(toks[k + 1], ">")) {
        k += 2;
        continue;
      }
      break;
    }
    if (k >= toks.size() || !IsPunct(toks[k], "(") || last_ident.empty()) {
      continue;
    }
    if (status_fns.count(last_ident) == 0) continue;
    ctx.Add(kDroppedStatus, toks[i].line,
            "(void)" + last_ident + "(...) drops a Status/Result; handle "
            "it, WT_CHECK it, or suppress with a reason");
  }
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (StrStartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard;
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  if (!StrStartsWith(guard, "WT_")) guard = "WT_" + guard;
  return guard;
}

void CheckHygiene(const FileCtx& ctx) {
  const std::vector<Token>& toks = ctx.lexed->tokens;
  const bool header = IsHeader(ctx.file->path);

  if (header) {
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (IsIdent(toks[i], "using") && IsIdent(toks[i + 1], "namespace")) {
        ctx.Add(kUsingNamespace, toks[i].line,
                "using namespace in a header leaks into every includer");
      }
    }

    // Include guard: the first two directives must be the derived
    // #ifndef/#define pair.
    const std::string expected = ExpectedGuard(ctx.file->path);
    std::vector<const Token*> directives;
    for (const Token& t : toks) {
      if (t.kind == TokKind::kPreproc) directives.push_back(&t);
      if (directives.size() >= 2) break;
    }
    bool guard_ok = false;
    if (directives.size() >= 2) {
      const std::vector<std::string> ifndef =
          StrSplit(std::string(StrTrim(directives[0]->text)), ' ');
      const std::vector<std::string> define =
          StrSplit(std::string(StrTrim(directives[1]->text)), ' ');
      guard_ok = ifndef.size() >= 2 && define.size() >= 2 &&
                 StrStartsWith(ifndef[0], "#") &&
                 ifndef[0].find("ifndef") != std::string::npos &&
                 define[0].find("define") != std::string::npos &&
                 ifndef[1] == expected && define[1] == expected;
      // Tolerate "#ifndef" split as "#" "ifndef" (rare formatting).
    }
    if (!guard_ok) {
      ctx.Add(kIncludeGuard, 1,
              "header must open with '#ifndef " + expected + "' / '#define " +
                  expected + "' (guard name is derived from the path)");
    }
  }

  if (ctx.serialization) {
    for (const Token& t : toks) {
      if (t.kind == TokKind::kIdent &&
          (t.text == "unordered_map" || t.text == "unordered_set" ||
           t.text == "unordered_multimap" || t.text == "unordered_multiset")) {
        ctx.Add(kUnorderedSer, t.line,
                "std::" + t.text + " in a serialization layer: iteration "
                "order is nondeterministic; use std::map/set or sort before "
                "emitting");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// concurrency
// ---------------------------------------------------------------------------

// Scans the argument list opened at toks[open] == "(". Reports the number
// of top-level arguments and whether any token names a std::memory_order
// (enum value `memory_order_acquire` or scoped `memory_order::acquire`).
// Returns false when the parens never balance (macro soup): the caller
// skips the site rather than guess.
bool ScanCallArgs(const std::vector<Token>& toks, size_t open, int* num_args,
                  bool* has_memory_order) {
  *num_args = 0;
  *has_memory_order = false;
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        if (--depth == 0) return true;
        continue;
      }
      if (t.text == "," && depth == 1 && *num_args > 0) {
        continue;  // separator inside the top-level list
      }
      if (t.text == ";") return false;  // unbalanced; statement ended
    }
    if (depth >= 1 && *num_args == 0 && !IsPunct(t, ")")) *num_args = 1;
    if (t.kind == TokKind::kPunct && t.text == "," && depth == 1) {
      ++*num_args;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "memory_order" || StrStartsWith(t.text, "memory_order_"))) {
      *has_memory_order = true;
    }
  }
  return false;
}

void CheckConcurrency(const FileCtx& ctx) {
  const std::vector<Token>& toks = ctx.lexed->tokens;

  // manual-lock only applies where a mutex type is in scope; weak_ptr's
  // .lock() (a shared_ptr factory, not a lock acquisition) stays legal in
  // mutex-free TUs.
  static const std::set<std::string> kMutexTypes = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex"};
  bool names_mutex = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent && kMutexTypes.count(t.text) != 0) {
      names_mutex = true;
      break;
    }
  }

  static const std::set<std::string> kAtomicOps = {
      "load",      "store",     "exchange",  "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",  "fetch_xor",
      "test_and_set", "compare_exchange_weak", "compare_exchange_strong"};

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    // concurrency/raw-thread: std::thread/jthread object creation in
    // src/wt outside the licensed TUs. References, vector elements, and
    // qualified names (std::thread::id) pass; `std::thread t(...)`,
    // members, and temporaries do not.
    if ((t.text == "thread" || t.text == "jthread") && i >= 2 &&
        IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std") &&
        StrStartsWith(ctx.file->path, "src/") && !ctx.raw_thread_allowed) {
      if (i + 1 < toks.size() &&
          (toks[i + 1].kind == TokKind::kIdent || IsPunct(toks[i + 1], "(") ||
           IsPunct(toks[i + 1], "{"))) {
        ctx.Add(kRawThread, t.line,
                "std::" + t.text + " construction outside core/thread_pool "
                "and serve/server: borrow workers from wt::ThreadPool (or "
                "serve's connection threads) so shutdown and observability "
                "stay centralized");
        continue;
      }
    }

    if (!IsMemberCall(toks, i)) continue;
    int num_args = 0;
    bool has_order = false;
    const bool balanced = ScanCallArgs(toks, i + 1, &num_args, &has_order);

    // concurrency/thread-detach: tree-wide; a detached thread outlives
    // every join/shutdown guarantee the server and pool make.
    if (t.text == "detach" && balanced && num_args == 0) {
      ctx.Add(kThreadDetach, t.line,
              ".detach(): detached threads outlive Shutdown() and TSan "
              "coverage; keep the handle and join it (see serve/server's "
              "reap list)");
      continue;
    }

    // concurrency/manual-lock: RAII-only lock discipline.
    if ((t.text == "lock" || t.text == "unlock") && names_mutex && balanced &&
        num_args == 0) {
      ctx.Add(kManualLock, t.line,
              "." + t.text + "(): manual lock discipline leaks on early "
              "return; use std::lock_guard / std::unique_lock / "
              "std::shared_lock");
      continue;
    }

    // concurrency/implicit-seq-cst: every atomic access in the scoped
    // paths names its order. Zero-argument .store()/.exchange()/.fetch_*()
    // cannot be atomic accesses (they all take a value), so accessors like
    // wind_tunnel.store() pass untouched.
    if (ctx.atomic_order_scoped && kAtomicOps.count(t.text) != 0 &&
        balanced && !has_order) {
      const bool atomic_shaped =
          t.text == "load" ? true : num_args >= 1;
      if (atomic_shaped) {
        ctx.Add(kImplicitSeqCst, t.line,
                "." + t.text + "() without a memory order defaults to "
                "seq_cst: name the order (and the reasoning it encodes) "
                "explicitly, e.g. std::memory_order_relaxed/acquire/"
                "release/acq_rel");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-flow
// ---------------------------------------------------------------------------

// Generalizes hygiene/unordered-serialization tree-wide: a TU that both
// uses an unordered container and calls (or defines) a serialization/hash
// sink can leak iteration order into bytes that must be reproducible. The
// serialization layers themselves are excluded — there the unconditional
// hygiene rule already fires.
void CheckDeterminismFlow(const FileCtx& ctx,
                          const std::vector<std::string>& sinks) {
  if (ctx.serialization) return;
  const std::vector<Token>& toks = ctx.lexed->tokens;

  std::vector<const Token*> unordered;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdent &&
        (t.text == "unordered_map" || t.text == "unordered_set" ||
         t.text == "unordered_multimap" || t.text == "unordered_multiset")) {
      unordered.push_back(&t);
    }
  }
  if (unordered.empty()) return;

  const Token* sink = nullptr;
  for (size_t i = 0; i < toks.size() && sink == nullptr; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    for (const std::string& s : sinks) {
      if (toks[i].text == s) {
        sink = &toks[i];
        break;
      }
    }
  }
  if (sink == nullptr) return;

  for (const Token* t : unordered) {
    ctx.Add(kUnorderedSink, t->line,
            "std::" + t->text + " in a TU that serializes or hashes (" +
                sink->text + "() at line " + std::to_string(sink->line) +
                "): iteration order can reach reproducible bytes; use "
                "std::map/set or sort before the sink");
  }
}

// ---------------------------------------------------------------------------
// scenario
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// The naming contract for registered builders: lowercase snake_case, no
// leading/trailing or doubled underscores.
bool IsSnakeCase(std::string_view s) {
  if (s.empty() || s.front() < 'a' || s.front() > 'z' || s.back() == '_') {
    return false;
  }
  for (char c : s) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return s.find("__") == std::string_view::npos;
}

struct BuilderReg {
  std::string family;
  std::string name;
  int line = 0;
  bool named_ok = true;  // snake_case passed (set by the per-file pass)
};

// Extracts literal `Register("family", "name"` registrations from raw
// source text. Raw, not the token stream, because the lexer drops string
// contents; a whitespace-tolerant matcher, because clang-format wraps the
// argument list across lines. Commented-out registrations count too —
// delete dead registrations, don't comment them out.
std::vector<BuilderReg> ExtractBuilderRegs(const std::string& src) {
  std::vector<BuilderReg> regs;
  auto skip_ws = [&](size_t k) {
    while (k < src.size() &&
           std::isspace(static_cast<unsigned char>(src[k])) != 0) {
      ++k;
    }
    return k;
  };
  auto read_string = [&](size_t k, std::string* out) -> size_t {
    // Returns one past the closing quote, or 0 if not a plain "..." literal.
    if (k >= src.size() || src[k] != '"') return 0;
    for (size_t e = k + 1; e < src.size() && src[e] != '\n'; ++e) {
      if (src[e] == '\\') return 0;  // escapes never appear in builder ids
      if (src[e] == '"') {
        *out = src.substr(k + 1, e - k - 1);
        return e + 1;
      }
    }
    return 0;
  };
  constexpr std::string_view kWord = "Register";
  int line = 1;
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      ++line;
      continue;
    }
    if (src.compare(i, kWord.size(), kWord) != 0) continue;
    if (i > 0 && IsIdentChar(src[i - 1])) continue;
    size_t k = i + kWord.size();
    if (k < src.size() && IsIdentChar(src[k])) continue;  // RegisterFoo(...)
    k = skip_ws(k);
    if (k >= src.size() || src[k] != '(') continue;
    BuilderReg reg;
    reg.line = line;
    k = read_string(skip_ws(k + 1), &reg.family);
    if (k == 0) continue;  // first argument is not a string literal
    k = skip_ws(k);
    if (k >= src.size() || src[k] != ',') continue;
    if (read_string(skip_ws(k + 1), &reg.name) == 0) continue;
    regs.push_back(std::move(reg));
    // Keep scanning from i + 1 so the newline counter stays in sync; the
    // matched span cannot contain another registration start.
  }
  return regs;
}

// Per-file scenario pass: snake_case naming + the single-parser rule.
// Registration extraction is returned for the sequential collision pass.
std::vector<BuilderReg> CheckScenarioLocal(const FileCtx& ctx) {
  std::vector<BuilderReg> regs;
  if (ctx.scenario) {
    regs = ExtractBuilderRegs(ctx.file->content);
    for (BuilderReg& reg : regs) {
      for (const std::string& part : {reg.family, reg.name}) {
        if (!IsSnakeCase(part)) {
          ctx.Add(kBuilderName, reg.line,
                  "builder id '" + reg.family + "/" + reg.name +
                      "': '" + part + "' is not snake_case "
                      "([a-z][a-z0-9_]*, no trailing or doubled '_')");
          reg.named_ok = false;
        }
      }
    }
  }

  if (!ctx.json_parser_exempt) {
    for (const Token& t : ctx.lexed->tokens) {
      if (t.kind == TokKind::kIdent && t.text == "ParseJson") {
        ctx.Add(kSingleParser, t.line,
                "ParseJson outside wt/common and wt/scenario: the strict "
                "JSON reader is the only scenario-file parser; load files "
                "via scenario::LoadScenarioFile");
      }
    }
  }
  return regs;
}

// builder_sites maps "family/name" -> "file:line" of the first
// registration, accumulated across every scanned file (in path order) so
// collisions are caught no matter which translation unit re-registers the
// name.
void CheckBuilderCollisions(const FileCtx& ctx,
                            const std::vector<BuilderReg>& regs,
                            std::map<std::string, std::string>* builder_sites) {
  for (const BuilderReg& reg : regs) {
    const std::string id = reg.family + "/" + reg.name;
    const std::string site = ctx.file->path + ":" + std::to_string(reg.line);
    auto [it, inserted] = builder_sites->emplace(id, site);
    if (!inserted && reg.named_ok) {
      ctx.Add(kBuilderName, reg.line,
              "duplicate builder '" + id + "': first registered at " +
                  it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// suppression application
// ---------------------------------------------------------------------------

bool RuleMatches(const std::string& pattern, const std::string& rule) {
  if (pattern == rule) return true;
  // Family pattern: "determinism" matches "determinism/x".
  return rule.size() > pattern.size() && rule[pattern.size()] == '/' &&
         StrStartsWith(rule, pattern);
}

bool KnownRuleOrFamily(const std::string& pattern) {
  static const std::set<std::string> kKnown = {
      kRawRandom,    kWallClock,      kSleep,          kStdFunction,
      kThrow,        kDynamicCast,    kIostream,       kNodiscard,
      kDroppedStatus, kUsingNamespace, kIncludeGuard,  kUnorderedSer,
      kBadSuppression, kUnusedSuppression, kBuilderName, kSingleParser,
      "deps/include-cycle", "deps/layer-back-edge", "deps/unknown-module",
      kImplicitSeqCst, kManualLock, kRawThread, kThreadDetach,
      kUnorderedSink,
      "determinism", "hotpath", "error", "hygiene", "scenario", "deps",
      "concurrency", "determinism-flow"};
  return kKnown.count(pattern) != 0;
}

// Resolves suppressions against the file's complete finding buffer (every
// pass for this file, cross-file ones included, has run by now).
void ApplySuppressions(const FileCtx& ctx, std::vector<Finding>* findings) {
  std::vector<bool> used(ctx.lexed->suppressions.size(), false);
  for (Finding& f : *findings) {
    for (size_t si = 0; si < ctx.lexed->suppressions.size(); ++si) {
      const Suppression& sup = ctx.lexed->suppressions[si];
      if (sup.malformed || sup.target_line != f.line) continue;
      for (const std::string& pattern : sup.rules) {
        if (RuleMatches(pattern, f.rule)) {
          f.suppressed = true;
          f.suppress_reason = sup.reason;
          used[si] = true;
          break;
        }
      }
      if (f.suppressed) break;
    }
  }
  for (size_t si = 0; si < ctx.lexed->suppressions.size(); ++si) {
    const Suppression& sup = ctx.lexed->suppressions[si];
    if (sup.malformed) {
      ctx.Add(kBadSuppression, sup.comment_line,
              "wtlint suppression needs 'allow(<rule>) -- <reason>' with a "
              "non-empty reason");
      continue;
    }
    for (const std::string& pattern : sup.rules) {
      if (!KnownRuleOrFamily(pattern)) {
        ctx.Add(kBadSuppression, sup.comment_line,
                "unknown rule '" + pattern + "' in suppression");
      }
    }
    if (!used[si]) {
      ctx.Add(kUnusedSuppression, sup.comment_line,
              "suppression matched no finding; delete it (allow(" +
                  StrJoin(sup.rules, ", ") + "))");
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

// Runs body(i) for i in [0, n) — on the pool when provided, else inline.
// Bodies write only to per-index slots, so scheduling cannot reorder
// results.
void ForEachFile(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ParallelFor(0, n, body);
}

}  // namespace

AnalysisResult Analyze(const std::vector<FileInput>& files,
                       const Config& config, ThreadPool* pool) {
  AnalysisResult result;
  result.files_scanned = static_cast<int>(files.size());
  const size_t n = files.size();

  // Per-file state: everything below writes only to its own index, which
  // is what makes the parallel passes race-free and the merge
  // deterministic.
  std::vector<LexedFile> lexed(n);
  std::vector<std::vector<Finding>> per_file(n);
  std::vector<std::set<std::string>> per_file_status_fns(n);
  std::vector<std::vector<BuilderReg>> per_file_regs(n);

  ForEachFile(pool, n, [&](size_t i) { lexed[i] = Lex(files[i].content); });

  auto make_ctx = [&](size_t i) {
    FileCtx ctx;
    ctx.file = &files[i];
    ctx.lexed = &lexed[i];
    ctx.findings = &per_file[i];
    for (const std::string& suffix : config.determinism_allowlist) {
      if (PathEndsWith(files[i].path, suffix)) ctx.determinism_exempt = true;
    }
    ctx.hot = PathStartsWithAny(files[i].path, config.hot_paths);
    ctx.serialization =
        PathStartsWithAny(files[i].path, config.serialization_paths);
    ctx.scenario = PathStartsWithAny(files[i].path, config.scenario_paths);
    ctx.json_parser_exempt =
        PathStartsWithAny(files[i].path, config.json_parser_allowlist);
    ctx.atomic_order_scoped =
        PathStartsWithAny(files[i].path, config.atomic_order_paths);
    ctx.raw_thread_allowed =
        PathStartsWithAny(files[i].path, config.raw_thread_allowlist);
    return ctx;
  };

  // Pass 1 (parallel): headers, to learn which function names return
  // Status/Result; nodiscard findings ride along.
  ForEachFile(pool, n, [&](size_t i) {
    if (!IsHeader(files[i].path)) return;
    FileCtx ctx = make_ctx(i);
    ScanStatusDecls(ctx, /*report=*/true, &per_file_status_fns[i]);
  });
  std::set<std::string> status_fns;
  for (const std::set<std::string>& fns : per_file_status_fns) {
    status_fns.insert(fns.begin(), fns.end());
  }

  // Pass 2 (parallel): every per-file rule.
  ForEachFile(pool, n, [&](size_t i) {
    FileCtx ctx = make_ctx(i);
    CheckDeterminism(ctx);
    CheckHotPath(ctx);
    CheckDroppedStatus(ctx, status_fns);
    CheckHygiene(ctx);
    CheckConcurrency(ctx);
    CheckDeterminismFlow(ctx, config.flow_sinks);
    per_file_regs[i] = CheckScenarioLocal(ctx);
  });

  // Pass 3 (sequential): cross-file checks. Files arrive sorted by path,
  // so the "first registered at" site recorded for each builder id — and
  // the include-graph traversal order — are deterministic.
  std::map<std::string, std::string> builder_sites;
  for (size_t i = 0; i < n; ++i) {
    FileCtx ctx = make_ctx(i);
    CheckBuilderCollisions(ctx, per_file_regs[i], &builder_sites);
  }
  CheckDependencies(files, lexed, config.layer_config, &per_file);

  // Pass 4 (parallel): per-file suppression resolution over the complete
  // per-file buffers.
  ForEachFile(pool, n, [&](size_t i) {
    FileCtx ctx = make_ctx(i);
    ApplySuppressions(ctx, &per_file[i]);
  });

  // Merge in path order, then sort for a report independent of rule
  // execution order.
  for (std::vector<Finding>& findings : per_file) {
    for (Finding& f : findings) result.findings.push_back(std::move(f));
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return result;
}

std::string ResultToJson(const AnalysisResult& result) {
  int unsuppressed = 0;
  int suppressed = 0;
  for (const Finding& f : result.findings) {
    (f.suppressed ? suppressed : unsuppressed)++;
  }
  std::string out = "{\n";
  out += StrFormat("  \"tool\": \"wtlint\",\n  \"version\": 2,\n");
  out += StrFormat("  \"files_scanned\": %d,\n", result.files_scanned);
  out += StrFormat("  \"unsuppressed\": %d,\n", unsuppressed);
  out += StrFormat("  \"suppressed\": %d,\n", suppressed);
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (f.suppressed) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"message\": \"%s\"}",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.message).c_str());
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"suppressions\": [";
  first = true;
  for (const Finding& f : result.findings) {
    if (!f.suppressed) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, "
        "\"reason\": \"%s\"}",
        JsonEscape(f.rule).c_str(), JsonEscape(f.file).c_str(), f.line,
        JsonEscape(f.suppress_reason).c_str());
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string ResultToText(const AnalysisResult& result) {
  std::string out;
  int unsuppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) continue;
    ++unsuppressed;
    out += StrFormat("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.message.c_str());
  }
  out += StrFormat("wtlint: %d file(s), %d finding(s)\n",
                   result.files_scanned, unsuppressed);
  return out;
}

std::string ApplyNodiscardFixes(const std::string& path,
                                const std::string& content,
                                const std::vector<Finding>& findings) {
  std::vector<size_t> offsets;
  for (const Finding& f : findings) {
    if (f.file == path && f.rule == kNodiscard && !f.suppressed &&
        f.fix_offset != static_cast<size_t>(-1)) {
      offsets.push_back(f.fix_offset);
    }
  }
  std::sort(offsets.rbegin(), offsets.rend());
  std::string out = content;
  for (size_t off : offsets) {
    if (off <= out.size()) out.insert(off, "[[nodiscard]] ");
  }
  return out;
}

}  // namespace wtlint
}  // namespace wt
