#include "tools/wtlint/include_graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "tools/wtlint/rules.h"
#include "wt/common/json.h"
#include "wt/common/string_util.h"

namespace wt {
namespace wtlint {

namespace {

constexpr const char* kIncludeCycle = "deps/include-cycle";
constexpr const char* kLayerBackEdge = "deps/layer-back-edge";
constexpr const char* kUnknownModule = "deps/unknown-module";

// Lexically normalizes a '/'-separated path: collapses "." and "..".
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> out;
  for (const std::string& part : StrSplit(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !out.empty() && out.back() != "..") {
      out.pop_back();
      continue;
    }
    out.push_back(part);
  }
  return StrJoin(out, "/");
}

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Extracts the target of an `#include "..."` directive, or "" for system
// includes and non-include directives. `text` is a whole logical
// preprocessor line (continuations already joined by the lexer).
std::string QuotedIncludeTarget(const std::string& text) {
  std::string_view s = StrTrim(text);
  if (s.empty() || s.front() != '#') return "";
  s = StrTrim(s.substr(1));
  if (!StrStartsWith(s, "include")) return "";
  s = StrTrim(s.substr(7));
  if (s.empty() || s.front() != '"') return "";
  const size_t close = s.find('"', 1);
  if (close == std::string_view::npos) return "";
  return std::string(s.substr(1, close - 1));
}

struct Edge {
  int to = -1;
  int line = 0;           // line of the #include in the including file
  std::string spelling;   // the quoted path as written
};

}  // namespace

LayerConfig DefaultLayerConfig() {
  // Mirrors tools/wtlint/layers.json (wtlint_test diffs the two; edit both
  // together, plus the DESIGN.md section 7 diagram).
  return LayerConfig{{
      {"common"},
      {"sla", "stats", "store"},
      {"obs"},
      {"sim"},
      {"analytics", "hw"},
      {"soft", "workload"},
      {"core"},
      {"query"},
      {"scenario"},
      {"serve"},
  }};
}

Result<LayerConfig> ParseLayersJson(std::string_view text) {
  using json::JsonValue;
  Result<JsonValue> doc = json::ParseJson(text);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::ParseError("layers.json: top level must be an object");
  }
  const JsonValue* layers = doc->Find("layers");
  if (layers == nullptr || !layers->is_array() || layers->size() == 0) {
    return Status::ParseError(
        "layers.json: required member 'layers' must be a non-empty array");
  }
  LayerConfig config;
  std::set<std::string> seen;
  for (size_t i = 0; i < layers->size(); ++i) {
    const JsonValue& rank = layers->At(i);
    if (!rank.is_array() || rank.size() == 0) {
      return Status::ParseError(StrFormat(
          "layers.json: layers[%zu] must be a non-empty array of modules",
          i));
    }
    std::vector<std::string> modules;
    for (size_t j = 0; j < rank.size(); ++j) {
      if (!rank.At(j).is_string() || rank.At(j).AsString().empty()) {
        return Status::ParseError(StrFormat(
            "layers.json: layers[%zu][%zu] must be a module name", i, j));
      }
      const std::string& name = rank.At(j).AsString();
      if (!seen.insert(name).second) {
        return Status::ParseError(
            StrFormat("layers.json: module '%s' appears twice",
                      name.c_str()));
      }
      modules.push_back(name);
    }
    config.layers.push_back(std::move(modules));
  }
  return config;
}

std::string ModuleOf(const std::string& path) {
  constexpr std::string_view kPrefix = "src/wt/";
  if (!StrStartsWith(path, kPrefix)) return "";
  const size_t start = kPrefix.size();
  const size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";  // a file directly in src/wt/
  return path.substr(start, slash - start);
}

void CheckDependencies(const std::vector<FileInput>& files,
                       const std::vector<LexedFile>& lexed,
                       const LayerConfig& layer_config,
                       std::vector<std::vector<Finding>>* per_file_findings) {
  auto add = [&](size_t i, const char* rule, int line, std::string message) {
    Finding f;
    f.rule = rule;
    f.file = files[i].path;
    f.line = line;
    f.message = std::move(message);
    (*per_file_findings)[i].push_back(std::move(f));
  };

  std::map<std::string, int> path_to_index;
  for (size_t i = 0; i < files.size(); ++i) {
    path_to_index[files[i].path] = static_cast<int>(i);
  }

  std::map<std::string, int> module_rank;
  for (size_t r = 0; r < layer_config.layers.size(); ++r) {
    for (const std::string& m : layer_config.layers[r]) {
      module_rank[m] = static_cast<int>(r);
    }
  }

  // Resolve every quoted include against the project's include roots:
  // the including file's own directory (bench/-style local includes),
  // then src/ (the "wt/..." convention), then the repo root ("tools/...").
  std::vector<std::vector<Edge>> adj(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    for (const Token& t : lexed[i].tokens) {
      if (t.kind != TokKind::kPreproc) continue;
      const std::string target = QuotedIncludeTarget(t.text);
      if (target.empty()) continue;
      int to = -1;
      const std::string local =
          NormalizePath(DirName(files[i].path) + "/" + target);
      for (const std::string& candidate :
           {local, "src/" + target, target}) {
        auto it = path_to_index.find(NormalizePath(candidate));
        if (it != path_to_index.end()) {
          to = it->second;
          break;
        }
      }
      if (to < 0 || to == static_cast<int>(i)) continue;
      adj[i].push_back(Edge{to, t.line, target});
    }
  }

  // --- deps/unknown-module + deps/layer-back-edge ---------------------------
  std::set<std::string> unknown_reported;
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string from_mod = ModuleOf(files[i].path);
    if (!from_mod.empty() && module_rank.count(from_mod) == 0 &&
        unknown_reported.insert(files[i].path).second) {
      add(i, kUnknownModule, 1,
          "module '" + from_mod + "' is not in tools/wtlint/layers.json; "
          "add it to a layer (the DAG is maintained with the tree)");
    }
    for (const Edge& e : adj[i]) {
      const std::string to_mod = ModuleOf(files[e.to].path);
      if (from_mod.empty()) continue;  // scan roots sit above every layer
      if (to_mod == from_mod) continue;
      if (module_rank.count(from_mod) == 0) continue;  // already reported
      if (to_mod.empty()) {
        add(i, kLayerBackEdge, e.line,
            "'" + e.spelling + "': src/wt module '" + from_mod +
                "' may not include scan-root code (" + files[e.to].path +
                "); tools/bench/examples sit above every layer");
        continue;
      }
      if (module_rank.count(to_mod) == 0) continue;  // reported at its file
      const int from_rank = module_rank[from_mod];
      const int to_rank = module_rank[to_mod];
      if (to_rank >= from_rank) {
        add(i, kLayerBackEdge, e.line,
            StrFormat("'%s': back-edge %s (layer %d) -> %s (layer %d); "
                      "edges must point strictly downward in "
                      "tools/wtlint/layers.json",
                      e.spelling.c_str(), from_mod.c_str(), from_rank,
                      to_mod.c_str(), to_rank));
      }
    }
  }

  // --- deps/include-cycle ---------------------------------------------------
  // Iterative DFS, files in path-sorted order (the caller sorts), adjacency
  // in include order: the first back-edge discovered for a cycle reports
  // it, anchored at the include directive that closes it. `done` nodes
  // cannot be on any new cycle, so each cycle is reported exactly once.
  std::vector<int> state(files.size(), 0);  // 0 new, 1 on stack, 2 done
  struct Frame {
    int node;
    size_t next_edge = 0;
  };
  for (size_t start = 0; start < files.size(); ++start) {
    if (state[start] != 0) continue;
    std::vector<Frame> stack{{static_cast<int>(start)}};
    state[start] = 1;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge >= adj[frame.node].size()) {
        state[frame.node] = 2;
        stack.pop_back();
        continue;
      }
      const Edge& e = adj[frame.node][frame.next_edge++];
      if (state[e.to] == 2) continue;
      if (state[e.to] == 1) {
        // Cycle: the stack suffix from e.to up to frame.node, closed by e.
        std::string path;
        bool in_cycle = false;
        for (const Frame& f : stack) {
          if (f.node == e.to) in_cycle = true;
          if (in_cycle) path += files[f.node].path + " -> ";
        }
        path += files[e.to].path;
        add(static_cast<size_t>(frame.node), kIncludeCycle, e.line,
            "include cycle: " + path +
                "; break it with a forward declaration or an interface "
                "split");
        continue;
      }
      state[e.to] = 1;
      stack.push_back(Frame{e.to});
    }
  }
}

}  // namespace wtlint
}  // namespace wt
