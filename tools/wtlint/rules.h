// wtlint rule engine: project-invariant checks over lexed token streams.
//
// Rule catalog (ids are what `// wtlint: allow(<rule>) -- <reason>` names;
// `allow(<family>)` suppresses a whole family on that line):
//
//   determinism/raw-random     std::random_device, rand(), srand(), ...
//   determinism/wall-clock     *_clock::now(), time(), gettimeofday(), ...
//   determinism/sleep          std::this_thread::sleep_*, usleep, nanosleep
//   hotpath/std-function       std::function in hot files (use wt::InlineFn)
//   hotpath/throw              throw in hot files (use Status/Result)
//   hotpath/dynamic-cast       dynamic_cast in hot files
//   hotpath/iostream           <iostream>/std::cout/std::cerr in hot files
//   error/nodiscard-status     Status/Result<T>-returning declaration in a
//                              header without [[nodiscard]]
//   error/dropped-status       (void)-cast of a call to a function known to
//                              return Status/Result
//   hygiene/using-namespace-header   using namespace in a header
//   hygiene/include-guard      header guard missing or not the WT_<PATH>_H_
//                              derived name (#pragma once also rejected:
//                              the tree standardizes on named guards)
//   hygiene/unordered-serialization  std::unordered_{map,set} inside the
//                              serialization layers (obs/, store/), where
//                              iteration order could leak into artifacts
//   hygiene/bad-suppression    wtlint suppression without a reason
//   hygiene/unused-suppression suppression that matched no finding
//   scenario/builder-name      a Register("family", "name", ...) builder
//                              registration (src/wt/scenario/) whose name is
//                              not snake_case, or whose family/name pair
//                              collides with an earlier registration
//   scenario/single-parser     ParseJson called outside wt/common and
//                              wt/scenario: the strict JSON reader is the
//                              only scenario-file parser; everything else
//                              loads through scenario::LoadScenarioFile
//
// Determinism rules are skipped entirely for files on the allowlist
// (default: exactly src/wt/obs/wallclock.cc — see that header's contract).

#ifndef WT_TOOLS_WTLINT_RULES_H_
#define WT_TOOLS_WTLINT_RULES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wt {
namespace wtlint {

struct Finding {
  std::string rule;
  std::string file;   // root-relative path
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
  // For error/nodiscard-status: byte offset where "[[nodiscard]] " can be
  // inserted by --fix-nodiscard. SIZE_MAX = not fixable.
  size_t fix_offset = static_cast<size_t>(-1);
};

struct Config {
  // Path suffixes exempt from the determinism family. Keep this list a
  // single file: every entry is a place nondeterminism can hide.
  std::vector<std::string> determinism_allowlist = {"src/wt/obs/wallclock.cc"};
  // Path prefixes (root-relative) where hot-path rules apply.
  std::vector<std::string> hot_paths = {"src/wt/sim/",
                                        "src/wt/workload/resource_queue"};
  // Path prefixes where unordered containers may not feed serialized output.
  std::vector<std::string> serialization_paths = {"src/wt/obs/",
                                                  "src/wt/store/"};
  // Path prefixes holding scenario builder registrations
  // (scenario/builder-name scans their raw text).
  std::vector<std::string> scenario_paths = {"src/wt/scenario/"};
  // Path prefixes allowed to call the strict JSON reader directly; every
  // other caller must go through the scenario layer (scenario/single-parser).
  std::vector<std::string> json_parser_allowlist = {"src/wt/common/",
                                                    "src/wt/scenario/"};
};

struct FileInput {
  std::string path;     // root-relative, '/'-separated
  std::string content;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // suppressed ones included, marked
  int files_scanned = 0;
};

/// Runs every rule over `files`. Two passes: headers are scanned first so
/// error/dropped-status knows the full set of Status-returning functions.
[[nodiscard]] AnalysisResult Analyze(const std::vector<FileInput>& files,
                                     const Config& config);

/// Strict-JSON report (wtlint --json); schema documented in wtlint.cc.
[[nodiscard]] std::string ResultToJson(const AnalysisResult& result);

/// Human-readable report: one "file:line: [rule] message" per finding.
[[nodiscard]] std::string ResultToText(const AnalysisResult& result);

/// Returns `content` with "[[nodiscard]] " inserted for every unsuppressed
/// error/nodiscard-status finding that belongs to `path`.
[[nodiscard]] std::string ApplyNodiscardFixes(
    const std::string& path, const std::string& content,
    const std::vector<Finding>& findings);

}  // namespace wtlint
}  // namespace wt

#endif  // WT_TOOLS_WTLINT_RULES_H_
