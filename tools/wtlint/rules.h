// wtlint rule engine: project-invariant checks over lexed token streams
// plus whole-program structure checks over the include graph
// (include_graph.h).
//
// Rule catalog (ids are what `// wtlint: allow(<rule>) -- <reason>` names;
// `allow(<family>)` suppresses a whole family on that line):
//
//   determinism/raw-random     std::random_device, rand(), srand(), ...
//   determinism/wall-clock     *_clock::now(), time(), gettimeofday(), ...
//   determinism/sleep          std::this_thread::sleep_*, usleep, nanosleep
//   hotpath/std-function       std::function in hot files (use wt::InlineFn)
//   hotpath/throw              throw in hot files (use Status/Result)
//   hotpath/dynamic-cast       dynamic_cast in hot files
//   hotpath/iostream           <iostream>/std::cout/std::cerr in hot files
//   error/nodiscard-status     Status/Result<T>-returning declaration in a
//                              header without [[nodiscard]]
//   error/dropped-status       (void)-cast of a call to a function known to
//                              return Status/Result
//   hygiene/using-namespace-header   using namespace in a header
//   hygiene/include-guard      header guard missing or not the WT_<PATH>_H_
//                              derived name (#pragma once also rejected:
//                              the tree standardizes on named guards)
//   hygiene/unordered-serialization  std::unordered_{map,set} inside the
//                              serialization layers (obs/, store/), where
//                              iteration order could leak into artifacts
//   hygiene/bad-suppression    wtlint suppression without a reason
//   hygiene/unused-suppression suppression that matched no finding
//   scenario/builder-name      a Register("family", "name", ...) builder
//                              registration (src/wt/scenario/) whose name is
//                              not snake_case, or whose family/name pair
//                              collides with an earlier registration
//   scenario/single-parser     ParseJson called outside wt/common,
//                              wt/scenario, tools/wtlint (its own layer
//                              config), and fuzz/ (drives the parser):
//                              the strict JSON reader is the only
//                              scenario-file parser; everything else loads
//                              through scenario::LoadScenarioFile
//   deps/include-cycle         file-level include cycle (full path in the
//                              message); the include graph must be acyclic
//   deps/layer-back-edge       module edge violating the committed layering
//                              DAG (tools/wtlint/layers.json): includes
//                              must point strictly downward
//   deps/unknown-module        src/wt module missing from layers.json
//   concurrency/implicit-seq-cst  atomic .load()/.store()/.exchange()/
//                              .fetch_*()/.compare_exchange_*() in sim/,
//                              core/, serve/ without a named memory order:
//                              seq_cst must be a decision, not a default
//   concurrency/manual-lock    .lock()/.unlock() member calls in a TU that
//                              names a mutex type; locks are RAII only
//                              (lock_guard / unique_lock / shared_lock)
//   concurrency/raw-thread     std::thread construction outside
//                              core/thread_pool and serve/server: threads
//                              come from the pool or the server, nowhere
//                              else in src/wt
//   concurrency/thread-detach  .detach() anywhere: a detached thread
//                              outlives every shutdown guarantee
//   determinism-flow/unordered-sink  a TU that uses an unordered container
//                              AND calls a serialization/hash sink
//                              (ToJson, ToString, Serialize, Fnv1a64, ...):
//                              iteration order can leak into bytes that are
//                              supposed to be byte-identical. Generalizes
//                              hygiene/unordered-serialization tree-wide.
//
// Determinism rules are skipped entirely for files on the allowlist
// (default: exactly src/wt/obs/wallclock.cc — see that header's contract).
//
// Analyze() is deterministic and optionally parallel: handed a
// wt::ThreadPool it lexes and rule-checks files concurrently into per-file
// finding buffers, then merges in path order — the report is byte-identical
// with and without the pool (covered by wtlint_test).

#ifndef WT_TOOLS_WTLINT_RULES_H_
#define WT_TOOLS_WTLINT_RULES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/wtlint/include_graph.h"

namespace wt {

class ThreadPool;

namespace wtlint {

struct Finding {
  std::string rule;
  std::string file;   // root-relative path
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
  // For error/nodiscard-status: byte offset where "[[nodiscard]] " can be
  // inserted by --fix-nodiscard. SIZE_MAX = not fixable.
  size_t fix_offset = static_cast<size_t>(-1);
};

struct Config {
  // Path suffixes exempt from the determinism family. Keep this list a
  // single file: every entry is a place nondeterminism can hide.
  std::vector<std::string> determinism_allowlist = {"src/wt/obs/wallclock.cc"};
  // Path prefixes (root-relative) where hot-path rules apply.
  std::vector<std::string> hot_paths = {"src/wt/sim/",
                                        "src/wt/workload/resource_queue"};
  // Path prefixes where unordered containers may not feed serialized output.
  std::vector<std::string> serialization_paths = {"src/wt/obs/",
                                                  "src/wt/store/"};
  // Path prefixes holding scenario builder registrations
  // (scenario/builder-name scans their raw text).
  std::vector<std::string> scenario_paths = {"src/wt/scenario/"};
  // Path prefixes allowed to call the strict JSON reader directly; every
  // other caller must go through the scenario layer (scenario/single-parser).
  // tools/wtlint loads its own layers.json; fuzz/ feeds the parser corpora.
  std::vector<std::string> json_parser_allowlist = {
      "src/wt/common/", "src/wt/scenario/", "tools/wtlint/", "fuzz/"};
  // Path prefixes where every atomic access must name its memory order
  // (concurrency/implicit-seq-cst).
  std::vector<std::string> atomic_order_paths = {"src/wt/sim/",
                                                 "src/wt/core/",
                                                 "src/wt/serve/"};
  // Path prefixes licensed to construct std::thread. Everything else in
  // src/wt borrows threads from the pool or the server.
  std::vector<std::string> raw_thread_allowlist = {"src/wt/core/thread_pool",
                                                   "src/wt/serve/server"};
  // Function names whose call marks a TU as a serialization/hash sink for
  // determinism-flow/unordered-sink.
  std::vector<std::string> flow_sinks = {
      "ToJson",   "ToString",        "ToCsv",       "Serialize",
      "ToText",   "SaveResultStore", "Fnv1a64",     "SweepConfigHash",
      "ScenarioHash", "WriteFrame",  "AppendJson"};
  // The committed layering DAG (tools/wtlint/layers.json; deps/ family).
  LayerConfig layer_config = DefaultLayerConfig();
};

struct FileInput {
  std::string path;     // root-relative, '/'-separated
  std::string content;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // suppressed ones included, marked
  int files_scanned = 0;
};

/// Runs every rule over `files`. Per-file passes run on `pool` when one is
/// provided (nullptr = serial); cross-file passes (status-fn collection,
/// builder collisions, the include graph) are sequential either way, and
/// the result is byte-identical regardless.
[[nodiscard]] AnalysisResult Analyze(const std::vector<FileInput>& files,
                                     const Config& config,
                                     ThreadPool* pool = nullptr);

/// Strict-JSON report (wtlint --json); schema documented in wtlint.cc.
[[nodiscard]] std::string ResultToJson(const AnalysisResult& result);

/// Human-readable report: one "file:line: [rule] message" per finding.
[[nodiscard]] std::string ResultToText(const AnalysisResult& result);

/// Returns `content` with "[[nodiscard]] " inserted for every unsuppressed
/// error/nodiscard-status finding that belongs to `path`.
[[nodiscard]] std::string ApplyNodiscardFixes(
    const std::string& path, const std::string& content,
    const std::vector<Finding>& findings);

}  // namespace wtlint
}  // namespace wt

#endif  // WT_TOOLS_WTLINT_RULES_H_
