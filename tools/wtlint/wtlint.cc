// wtlint — the wind tunnel's in-tree static analyzer.
//
// Scans src/, bench/, examples/, and tools/ for violations of the project
// invariants that make sweep results reproducible and the DES hot path
// allocation-free (rule catalog in rules.h; suppression syntax:
// `// wtlint: allow(<rule>) -- <reason>`). CI runs `wtlint --json` from the
// repo root and fails on any unsuppressed finding.
//
// Usage:
//   wtlint [--root <dir>] [--json] [--fix-nodiscard] [paths...]
//
//   --root <dir>      repo root for path-relative rule config (default: .)
//   --json            emit the strict-JSON report (self-checked against
//                     wt::obs::ValidateJson before printing):
//                       { "tool": "wtlint", "version": 1,
//                         "files_scanned": N, "unsuppressed": N,
//                         "suppressed": N,
//                         "findings": [{rule, file, line, message}...],
//                         "suppressions": [{rule, file, line, reason}...] }
//   --fix-nodiscard   rewrite headers in place, inserting [[nodiscard]] on
//                     every flagged Status/Result-returning declaration
//   paths...          scan exactly these files (default: the four roots)
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/wtlint/rules.h"
#include "wt/obs/json_lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fix_nodiscard = false;
  fs::path root = ".";
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fix-nodiscard") {
      fix_nodiscard = true;
    } else if (arg == "--root") {
      if (++i >= argc) {
        std::fprintf(stderr, "wtlint: --root needs a directory\n");
        return 2;
      }
      root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: wtlint [--root <dir>] [--json] [--fix-nodiscard] "
          "[paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wtlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  // Collect the file set, sorted by root-relative path so reports (and the
  // JSON artifact) are byte-stable across filesystems.
  std::vector<fs::path> paths;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) paths.emplace_back(p);
  } else {
    for (const char* dir : {"src", "bench", "examples", "tools"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
  }

  std::vector<wt::wtlint::FileInput> files;
  files.reserve(paths.size());
  std::map<std::string, fs::path> rel_to_disk;
  for (const fs::path& p : paths) {
    wt::wtlint::FileInput f;
    f.path = RelPath(p, root);
    if (!ReadFile(p, &f.content)) {
      std::fprintf(stderr, "wtlint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    rel_to_disk[f.path] = p;
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const wt::wtlint::FileInput& a,
               const wt::wtlint::FileInput& b) { return a.path < b.path; });

  const wt::wtlint::Config config;
  wt::wtlint::AnalysisResult result = wt::wtlint::Analyze(files, config);

  if (fix_nodiscard) {
    int fixed_files = 0;
    for (size_t i = 0; i < files.size(); ++i) {
      const std::string fixed = wt::wtlint::ApplyNodiscardFixes(
          files[i].path, files[i].content, result.findings);
      if (fixed == files[i].content) continue;
      std::ofstream out(rel_to_disk.at(files[i].path),
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "wtlint: cannot write %s\n",
                     files[i].path.c_str());
        return 2;
      }
      out << fixed;
      ++fixed_files;
    }
    std::fprintf(stderr, "wtlint: inserted [[nodiscard]] in %d file(s); "
                         "re-run to verify\n",
                 fixed_files);
    return 0;
  }

  int unsuppressed = 0;
  for (const auto& f : result.findings) {
    if (!f.suppressed) ++unsuppressed;
  }

  if (json) {
    const std::string report = wt::wtlint::ResultToJson(result);
    // The report is itself an artifact; hold it to the same bar as the
    // trace/metrics exporters.
    const wt::Status valid = wt::obs::ValidateJson(report);
    if (!valid.ok()) {
      std::fprintf(stderr, "wtlint: internal error: report is not valid "
                           "JSON: %s\n",
                   valid.ToString().c_str());
      return 2;
    }
    std::fputs(report.c_str(), stdout);
  } else {
    std::fputs(wt::wtlint::ResultToText(result).c_str(), stdout);
  }
  return unsuppressed == 0 ? 0 : 1;
}
