// wtlint — the wind tunnel's in-tree static analyzer.
//
// Scans src/, bench/, examples/, tools/, and fuzz/ for violations of the
// project invariants that make sweep results reproducible and the DES hot
// path allocation-free, plus whole-program structure checks over the
// include graph (rule catalog in rules.h; suppression syntax:
// `// wtlint: allow(<rule>) -- <reason>`). CI runs `wtlint --json` from the
// repo root and fails on any unsuppressed finding.
//
// Usage:
//   wtlint [--root <dir>] [--json] [--fix-nodiscard] [--changed-only]
//          [--serial] [paths...]
//
//   --root <dir>      repo root for path-relative rule config (default: .)
//   --json            emit the strict-JSON report (self-checked against
//                     wt::obs::ValidateJson before printing):
//                       { "tool": "wtlint", "version": 2,
//                         "files_scanned": N, "unsuppressed": N,
//                         "suppressed": N,
//                         "findings": [{rule, file, line, message}...],
//                         "suppressions": [{rule, file, line, reason}...] }
//   --fix-nodiscard   rewrite headers in place, inserting [[nodiscard]] on
//                     every flagged Status/Result-returning declaration
//   --changed-only    report findings only for files changed vs. git HEAD
//                     (plus untracked files). The whole tree is still
//                     scanned — cross-file rules (deps/, builder
//                     collisions) need the full graph — only the report
//                     and exit code are filtered. Made for pre-commit
//                     hooks; see README.
//   --serial          disable the worker pool (per-file passes run on the
//                     calling thread; output is byte-identical either way)
//   paths...          scan exactly these files (default: the five roots)
//
// The layering DAG is read from <root>/tools/wtlint/layers.json when
// present (exit 2 if unparseable — a broken config is an internal error,
// not a finding); otherwise the compiled-in default (the same DAG) is
// used, so fixture-driven invocations work from any directory.
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config/I-O error.

#include <cstdio>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tools/wtlint/rules.h"
#include "wt/common/string_util.h"
#include "wt/core/thread_pool.h"
#include "wt/obs/json_lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

// Runs `git -C <root> <args>` and appends one entry per non-empty output
// line. Returns false (with stderr already written) when git fails —
// --changed-only without a usable repo is an internal error, not "no
// changes".
bool GitLines(const fs::path& root, const std::string& args,
              std::vector<std::string>* lines) {
  const std::string cmd =
      "git -C '" + root.string() + "' " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "wtlint: cannot run git for --changed-only\n");
    return false;
  }
  std::string output;
  char buf[4096];
  size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::fprintf(stderr,
                 "wtlint: 'git %s' failed (rc=%d); --changed-only needs a "
                 "git checkout\n",
                 args.c_str(), rc);
    return false;
  }
  for (const std::string& line : wt::StrSplit(output, '\n')) {
    if (!line.empty()) lines->push_back(line);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fix_nodiscard = false;
  bool changed_only = false;
  bool serial = false;
  fs::path root = ".";
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fix-nodiscard") {
      fix_nodiscard = true;
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "--root") {
      if (++i >= argc) {
        std::fprintf(stderr, "wtlint: --root needs a directory\n");
        return 2;
      }
      root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: wtlint [--root <dir>] [--json] [--fix-nodiscard] "
          "[--changed-only] [--serial] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wtlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  // Collect the file set, sorted by root-relative path so reports (and the
  // JSON artifact) are byte-stable across filesystems.
  std::vector<fs::path> paths;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) paths.emplace_back(p);
  } else {
    for (const char* dir : {"src", "bench", "examples", "tools", "fuzz"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
  }

  std::vector<wt::wtlint::FileInput> files;
  files.reserve(paths.size());
  std::map<std::string, fs::path> rel_to_disk;
  for (const fs::path& p : paths) {
    wt::wtlint::FileInput f;
    f.path = RelPath(p, root);
    if (!ReadFile(p, &f.content)) {
      std::fprintf(stderr, "wtlint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    rel_to_disk[f.path] = p;
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const wt::wtlint::FileInput& a,
               const wt::wtlint::FileInput& b) { return a.path < b.path; });

  wt::wtlint::Config config;
  const fs::path layers_path = root / "tools" / "wtlint" / "layers.json";
  if (fs::exists(layers_path)) {
    std::string layers_text;
    if (!ReadFile(layers_path, &layers_text)) {
      std::fprintf(stderr, "wtlint: cannot read %s\n",
                   layers_path.string().c_str());
      return 2;
    }
    wt::Result<wt::wtlint::LayerConfig> parsed =
        wt::wtlint::ParseLayersJson(layers_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "wtlint: %s: %s\n", layers_path.string().c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    config.layer_config = *std::move(parsed);
  }

  // The per-file passes parallelize well (one buffer per file, merged in
  // path order), so default to a pool sized for the host.
  std::unique_ptr<wt::ThreadPool> pool;
  if (!serial && files.size() > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    const int workers = std::max(1, static_cast<int>(hw == 0 ? 2 : hw) - 1);
    pool = std::make_unique<wt::ThreadPool>(workers);
  }
  wt::wtlint::AnalysisResult result =
      wt::wtlint::Analyze(files, config, pool.get());

  if (changed_only) {
    std::vector<std::string> changed;
    if (!GitLines(root, "diff --name-only HEAD", &changed) ||
        !GitLines(root, "ls-files --others --exclude-standard", &changed)) {
      return 2;
    }
    const std::set<std::string> changed_set(changed.begin(), changed.end());
    auto untouched = [&](const wt::wtlint::Finding& f) {
      return changed_set.count(f.file) == 0;
    };
    result.findings.erase(std::remove_if(result.findings.begin(),
                                         result.findings.end(), untouched),
                          result.findings.end());
  }

  if (fix_nodiscard) {
    int fixed_files = 0;
    for (size_t i = 0; i < files.size(); ++i) {
      const std::string fixed = wt::wtlint::ApplyNodiscardFixes(
          files[i].path, files[i].content, result.findings);
      if (fixed == files[i].content) continue;
      std::ofstream out(rel_to_disk.at(files[i].path),
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "wtlint: cannot write %s\n",
                     files[i].path.c_str());
        return 2;
      }
      out << fixed;
      ++fixed_files;
    }
    std::fprintf(stderr, "wtlint: inserted [[nodiscard]] in %d file(s); "
                         "re-run to verify\n",
                 fixed_files);
    return 0;
  }

  int unsuppressed = 0;
  for (const auto& f : result.findings) {
    if (!f.suppressed) ++unsuppressed;
  }

  if (json) {
    const std::string report = wt::wtlint::ResultToJson(result);
    // The report is itself an artifact; hold it to the same bar as the
    // trace/metrics exporters.
    const wt::Status valid = wt::obs::ValidateJson(report);
    if (!valid.ok()) {
      std::fprintf(stderr, "wtlint: internal error: report is not valid "
                           "JSON: %s\n",
                   valid.ToString().c_str());
      return 2;
    }
    std::fputs(report.c_str(), stdout);
  } else {
    std::fputs(wt::wtlint::ResultToText(result).c_str(), stdout);
  }
  return unsuppressed == 0 ? 0 : 1;
}
