#include "tools/wtlint/lexer.h"

#include <cctype>

#include "wt/common/string_util.h"

namespace wt {
namespace wtlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "wtlint: allow(rule-a, rule-b) -- reason" from a comment body.
// Returns false if the comment is not a wtlint directive at all.
bool ParseSuppression(std::string_view body, Suppression* out) {
  std::string_view s = StrTrim(body);
  constexpr std::string_view kPrefix = "wtlint:";
  if (!StrStartsWith(s, kPrefix)) return false;
  s = StrTrim(s.substr(kPrefix.size()));
  constexpr std::string_view kAllow = "allow";
  if (!StrStartsWith(s, kAllow)) {
    out->malformed = true;  // "wtlint:" followed by something we don't know
    return true;
  }
  s = StrTrim(s.substr(kAllow.size()));
  if (s.empty() || s.front() != '(') {
    out->malformed = true;
    return true;
  }
  size_t close = s.find(')');
  if (close == std::string_view::npos) {
    out->malformed = true;
    return true;
  }
  for (const std::string& rule : StrSplit(s.substr(1, close - 1), ',')) {
    std::string_view r = StrTrim(rule);
    if (!r.empty()) out->rules.emplace_back(r);
  }
  s = StrTrim(s.substr(close + 1));
  // The reason separator is mandatory; an empty reason is malformed.
  constexpr std::string_view kSep = "--";
  if (out->rules.empty() || !StrStartsWith(s, kSep)) {
    out->malformed = true;
    return true;
  }
  out->reason = std::string(StrTrim(s.substr(kSep.size())));
  if (out->reason.empty()) out->malformed = true;
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      Step();
    }
    out_.num_lines = line_;
    ResolveSuppressionTargets();
    return std::move(out_);
  }

 private:
  char Cur() const { return src_[pos_]; }
  char At(size_t i) const { return i < src_.size() ? src_[i] : '\0'; }
  bool Has(size_t n) const { return pos_ + n <= src_.size(); }

  void Advance() {
    if (src_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void Emit(TokKind kind, size_t start, size_t end, int line) {
    out_.tokens.push_back(
        {kind, std::string(src_.substr(start, end - start)), line, start});
    if (kind != TokKind::kPreproc) code_lines_.push_back(line);
  }

  void Step() {
    const char c = Cur();
    if (c == '\\' && At(pos_ + 1) == '\n') {  // line continuation
      Advance();
      Advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') line_start_ = true;
      Advance();
      return;
    }
    if (c == '/' && At(pos_ + 1) == '/') {
      LineComment();
      return;
    }
    if (c == '/' && At(pos_ + 1) == '*') {
      BlockComment();
      return;
    }
    if (c == '#' && line_start_) {
      Preprocessor();
      return;
    }
    line_start_ = false;
    if (c == '"') {
      StringLiteral();
      return;
    }
    if (c == '\'') {
      CharLiteral();
      return;
    }
    if (IsIdentStart(c)) {
      // R"( ... )" raw strings masquerade as an identifier prefix.
      if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') && RawStringAt(pos_)) {
        RawString();
        return;
      }
      Identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Number();
      return;
    }
    Punct();
  }

  void LineComment() {
    const int line = line_;
    size_t start = pos_ + 2;
    while (pos_ < src_.size() && Cur() != '\n') Advance();
    Suppression sup;
    if (ParseSuppression(src_.substr(start, pos_ - start), &sup)) {
      sup.comment_line = line;
      // Whole-line comments govern the next code line; trailing comments
      // govern their own line. Resolved in ResolveSuppressionTargets().
      sup.target_line = LineHasCode(line) ? line : 0;
      out_.suppressions.push_back(std::move(sup));
    }
  }

  void BlockComment() {
    Advance();  // '/'
    Advance();  // '*'
    while (Has(2) && !(Cur() == '*' && At(pos_ + 1) == '/')) Advance();
    if (Has(2)) {
      Advance();
      Advance();
    } else {
      pos_ = src_.size();
    }
  }

  void Preprocessor() {
    const int line = line_;
    const size_t start = pos_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = Cur();
      if (c == '\\' && At(pos_ + 1) == '\n') {  // continuation: join lines
        text += ' ';
        Advance();
        Advance();
        continue;
      }
      if (c == '/' && At(pos_ + 1) == '/') {
        while (pos_ < src_.size() && Cur() != '\n') Advance();
        continue;
      }
      if (c == '/' && At(pos_ + 1) == '*') {
        BlockComment();
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      text += c;
      Advance();
    }
    out_.tokens.push_back({TokKind::kPreproc, std::move(text), line, start});
    line_start_ = true;
  }

  void StringLiteral() {
    const int line = line_;
    const size_t start = pos_;
    Advance();  // opening quote
    while (pos_ < src_.size() && Cur() != '"') {
      if (Cur() == '\\' && Has(2)) Advance();
      Advance();
    }
    if (pos_ < src_.size()) Advance();  // closing quote
    out_.tokens.push_back({TokKind::kString, "", line, start});
    code_lines_.push_back(line);
  }

  void CharLiteral() {
    const int line = line_;
    const size_t start = pos_;
    Advance();
    while (pos_ < src_.size() && Cur() != '\'') {
      if (Cur() == '\\' && Has(2)) Advance();
      Advance();
    }
    if (pos_ < src_.size()) Advance();
    out_.tokens.push_back({TokKind::kChar, "", line, start});
    code_lines_.push_back(line);
  }

  // True if an R"..."-style raw string starts at `i` (allowing an encoding
  // prefix, e.g. u8R"(x)").
  bool RawStringAt(size_t i) const {
    size_t j = i;
    while (j < src_.size() && IsIdentChar(src_[j]) && src_[j] != 'R') ++j;
    return j < src_.size() && src_[j] == 'R' && j + 1 < src_.size() &&
           src_[j + 1] == '"' && j - i <= 2;
  }

  void RawString() {
    const int line = line_;
    const size_t start = pos_;
    while (pos_ < src_.size() && Cur() != '"') Advance();  // prefix + R
    Advance();                                             // '"'
    std::string delim;
    while (pos_ < src_.size() && Cur() != '(') {
      delim += Cur();
      Advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < src_.size() &&
           src_.compare(pos_, close.size(), close) != 0) {
      Advance();
    }
    for (size_t i = 0; i < close.size() && pos_ < src_.size(); ++i) Advance();
    out_.tokens.push_back({TokKind::kString, "", line, start});
    code_lines_.push_back(line);
  }

  void Identifier() {
    const int line = line_;
    const size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(Cur())) Advance();
    Emit(TokKind::kIdent, start, pos_, line);
  }

  void Number() {
    const int line = line_;
    const size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = Cur();
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        Advance();
        continue;
      }
      // Exponent signs: 1e+5, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          Advance();
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back({TokKind::kNumber, "", line, start});
    code_lines_.push_back(line);
  }

  void Punct() {
    const int line = line_;
    const size_t start = pos_;
    if (Cur() == ':' && At(pos_ + 1) == ':') {  // fuse "::" for matching
      Advance();
      Advance();
      Emit(TokKind::kPunct, start, pos_, line);
      return;
    }
    Advance();
    Emit(TokKind::kPunct, start, pos_, line);
  }

  bool LineHasCode(int line) const {
    for (auto it = code_lines_.rbegin(); it != code_lines_.rend(); ++it) {
      if (*it == line) return true;
      if (*it < line) break;
    }
    return false;
  }

  // A whole-line suppression (target_line == 0) governs the first code line
  // after its comment; stacked suppression comments share one target.
  void ResolveSuppressionTargets() {
    for (Suppression& sup : out_.suppressions) {
      if (sup.target_line != 0) continue;
      int best = 0;
      for (int line : code_lines_) {
        if (line > sup.comment_line && (best == 0 || line < best)) best = line;
      }
      sup.target_line = best;  // 0 = dangling (end of file); never matches
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool line_start_ = true;
  LexedFile out_;
  std::vector<int> code_lines_;  // line numbers of code tokens, in order
};

}  // namespace

LexedFile Lex(std::string_view src) { return Lexer(src).Run(); }

}  // namespace wtlint
}  // namespace wt
