// A minimal C++ token scanner for wtlint.
//
// This is deliberately not a real C++ front end: wtlint's rules are
// pattern checks over identifier/punctuation streams ("std :: function",
// "_clock :: now", declaration shapes), so all the lexer must do is
// classify tokens, strip comments and literals (their contents can never
// trigger a rule), keep preprocessor directives inspectable, and record
// `// wtlint: allow(<rule>) -- <reason>` suppression comments with the
// line they govern. Raw strings, line continuations, and block comments
// are handled so that stripping never desynchronizes line numbers.

#ifndef WT_TOOLS_WTLINT_LEXER_H_
#define WT_TOOLS_WTLINT_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wt {
namespace wtlint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (contents irrelevant to rules)
  kString,   // string literal (contents dropped)
  kChar,     // char literal (contents dropped)
  kPunct,    // one punctuation glyph; "::" is fused into a single token
  kPreproc,  // a whole logical preprocessor line (continuations joined)
};

struct Token {
  TokKind kind;
  std::string text;  // for kPreproc: the full directive text
  int line = 0;      // 1-based line of the token's first character
  size_t offset = 0; // byte offset into the original source
};

/// One parsed `// wtlint: allow(rule, ...) -- reason` comment.
struct Suppression {
  std::vector<std::string> rules;
  std::string reason;   // text after "--", trimmed; empty = malformed
  int comment_line = 0; // where the comment physically sits
  int target_line = 0;  // the code line it suppresses (resolved by lexer)
  bool malformed = false;  // missing reason or unparsable allow() list
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  int num_lines = 0;
};

/// Tokenizes `src`. Never fails: unrecognized bytes become kPunct tokens.
[[nodiscard]] LexedFile Lex(std::string_view src);

}  // namespace wtlint
}  // namespace wt

#endif  // WT_TOOLS_WTLINT_LEXER_H_
