// Fuzz harness for the strict JSON reader (wt::json::ParseJson), the only
// parser scenario files ever pass through. Two properties:
//   1. ParseJson never crashes, hangs, or trips a sanitizer on any bytes.
//   2. Canonical round-trip: Serialize() of a parsed value re-parses, and
//      re-serializes to the same bytes (Parse(Serialize(v)) == v).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "wt/common/json.h"
#include "wt/common/result.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  wt::Result<wt::json::JsonValue> parsed = wt::json::ParseJson(input);
  if (!parsed.ok()) return 0;

  const std::string once = parsed->Serialize();
  wt::Result<wt::json::JsonValue> again = wt::json::ParseJson(once);
  if (!again.ok()) {
    std::fprintf(stderr, "fuzz_json: Serialize() produced unparseable "
                         "output: %s\n",
                 once.c_str());
    std::abort();
  }
  const std::string twice = again->Serialize();
  if (once != twice) {
    std::fprintf(stderr,
                 "fuzz_json: round-trip not canonical:\n  %s\n  %s\n",
                 once.c_str(), twice.c_str());
    std::abort();
  }
  return 0;
}
