// Fallback driver for toolchains without libFuzzer (GCC builds; the CI
// fuzz-smoke job uses Clang's real -fsanitize=fuzzer). Replays every
// corpus file handed on the command line (directories recurse), then runs
// WT_FUZZ_MUTANTS (default 64) deterministic xorshift mutants of each
// seed, so the harness still explores a neighborhood of the corpus — the
// same property checks run either way, and a crash is a real finding.
//
// No wall clock, no global RNG: the mutant stream is a pure function of
// the seed bytes, so a failure reproduces by re-running the same command.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

void RunInput(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

// Byte-level mutations in the classic fuzzer repertoire: flip, overwrite,
// insert, erase, truncate. Small and dumb on purpose — the corpus carries
// the structure, the mutants probe its edges.
std::string Mutate(const std::string& seed, uint64_t* rng) {
  std::string m = seed;
  const int edits = 1 + static_cast<int>(XorShift(rng) % 4);
  for (int e = 0; e < edits; ++e) {
    const uint64_t op = XorShift(rng) % 5;
    const size_t pos = m.empty() ? 0 : XorShift(rng) % m.size();
    switch (op) {
      case 0:
        if (!m.empty()) m[pos] ^= static_cast<char>(1u << (XorShift(rng) % 8));
        break;
      case 1:
        if (!m.empty()) m[pos] = static_cast<char>(XorShift(rng) % 256);
        break;
      case 2:
        m.insert(pos, 1, static_cast<char>(XorShift(rng) % 256));
        break;
      case 3:
        if (!m.empty()) m.erase(pos, 1);
        break;
      default:
        m.resize(pos);
        break;
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int mutants = 64;
  if (const char* env = std::getenv("WT_FUZZ_MUTANTS")) {
    mutants = std::atoi(env);
  }

  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg = argv[i];
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "fuzz: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  std::sort(inputs.begin(), inputs.end());

  long executed = 0;
  for (const fs::path& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string seed = ss.str();
    RunInput(seed);
    ++executed;
    uint64_t rng = Fnv1a(seed) | 1u;  // never the all-zero xorshift orbit
    for (int k = 0; k < mutants; ++k) {
      RunInput(Mutate(seed, &rng));
      ++executed;
    }
  }
  std::printf("fuzz: %ld input(s) executed (%zu seed(s), %d mutant(s) "
              "each), no crashes\n",
              executed, inputs.size(), mutants);
  return 0;
}
