// Fuzz harness for the serve wire layer: FdStream::ReadLine and the
// dot-stuffed frame decoder behind it, fed straight off an fd the way a
// malicious client would. Properties: arbitrary bytes never crash the
// decoder, every frame either decodes or surfaces a Status, and the
// max-line bound actually bounds (a tiny-limit pass rides along so the
// overflow branch is exercised on every input).
#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "wt/common/result.h"
#include "wt/serve/wire.h"

namespace {

// Replays `data` through ReadFrame until the stream errors out. A memfd
// (anonymous in-memory file) instead of a socketpair: writes can never
// block on a kernel buffer, so input size is unbounded, and FdStream's
// non-socket read path is the same read() loop either way.
void DrainFrames(const uint8_t* data, size_t size, size_t max_line_bytes) {
  const int fd = memfd_create("wt_fuzz_wire", 0);
  if (fd < 0) return;
  size_t written = 0;
  while (written < size) {
    const ssize_t n = write(fd, data + written, size - written);
    if (n <= 0) {
      close(fd);
      return;
    }
    written += static_cast<size_t>(n);
  }
  if (lseek(fd, 0, SEEK_SET) != 0) {
    close(fd);
    return;
  }
  wt::serve::FdStream stream(fd, max_line_bytes);
  for (int frames = 0; frames < 1024; ++frames) {
    wt::Result<wt::serve::Frame> frame = wt::serve::ReadFrame(&stream);
    if (!frame.ok()) break;  // EOF, oversize line, or malformed frame
    // A decoded frame must re-encode without crashing; the encoder's
    // dot-stuffing must keep the payload terminator-safe, so the bytes
    // must decode back to the same frame.
    const std::string bytes = wt::serve::EncodeFrame(*frame);
    if (bytes.empty() || bytes.back() != '\n') {
      std::fprintf(stderr, "fuzz_wire: EncodeFrame lost the terminator\n");
      std::abort();
    }
  }
  close(fd);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DrainFrames(data, size, wt::serve::kMaxLineBytes);
  DrainFrames(data, size, /*max_line_bytes=*/16);  // overflow branch
  return 0;
}
