// Fuzz harness for the what-if DSL front end: the lexer and the
// recursive-descent parser behind every `query` frame the server accepts.
// Property: arbitrary query text never crashes either stage — errors come
// back as Status, not as reads past the token stream.
#include <cstdint>
#include <string>

#include "wt/common/result.h"
#include "wt/query/lexer.h"
#include "wt/query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  // Exercised separately: ParseQuery tokenizes internally, but a lexer
  // regression that only trips on token streams ParseQuery rejects early
  // should still be caught.
  (void)wt::Tokenize(input);  // wtlint: allow(error/dropped-status) -- fuzz harness: only crash-freedom is asserted
  (void)wt::ParseQuery(input);  // wtlint: allow(error/dropped-status) -- fuzz harness: only crash-freedom is asserted
  return 0;
}
