// Quickstart: ask the wind tunnel one what-if question end to end.
//
// Scenario: a 10-node storage cluster, 10,000 customers, quorum-replicated
// data (the paper's Figure 1 setting). How likely is it that at least one
// customer loses access when 2 nodes are down — and does round-robin or
// random placement handle it better?
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "wt/analytics/combinatorics.h"
#include "wt/soft/availability_static.h"

int main() {
  using namespace wt;

  StaticAvailabilityConfig config;
  config.num_nodes = 10;
  config.num_users = 10000;
  config.placement_samples = 20;
  config.trials_per_placement = 100;
  config.seed = 2014;

  ReplicationScheme scheme = ReplicationScheme::Majority(3);

  std::printf("Cluster: N=%d nodes, %lld users, %s, majority quorum\n\n",
              config.num_nodes, static_cast<long long>(config.num_users),
              scheme.name().c_str());
  std::printf("%-14s %-10s %-22s %-22s\n", "placement", "failures",
              "P(any user unavailable)", "exact (closed form)");

  for (const char* placement_name : {"round_robin", "random"}) {
    auto placement = PlacementPolicy::Create(placement_name).value();
    for (int f = 0; f <= 4; ++f) {
      StaticAvailabilityPoint mc =
          EstimateStaticUnavailability(scheme, *placement, config, f);
      double exact =
          std::string(placement_name) == "round_robin"
              ? RoundRobinAnyUnavailable(config.num_nodes, 3, 2, f).value()
              : RandomPlacementAnyUnavailable(config.num_nodes, 3, 2, f,
                                              config.num_users);
      std::printf("%-14s %-10d %-22.4f %-22.4f\n", placement_name, f,
                  mc.p_any_unavailable, exact);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading: with 10,000 users and random placement, almost any pair of\n"
      "failed nodes takes out someone's quorum; round-robin placement only\n"
      "fails when two failures land within one replication window.\n");
  return 0;
}
