// Hardware provisioning via the declarative query language (§3, §4.1):
//
//   "Should I invest in storage or memory in order to satisfy the SLAs of
//    95% of my customers and minimize the total operating cost?"
//
// The query explores memory sizes and disk technologies, keeps the designs
// whose p95 latency meets the SLA, and orders them by monthly cost — the
// whole §4.2 pipeline (grid, SLA filter, ordering) in one statement.
//
// Run: ./build/examples/example_provisioning_query

#include <cstdio>

#include "wt/query/builtin_sims.h"
#include "wt/query/executor.h"

int main() {
  using namespace wt;

  WindTunnel tunnel;
  if (Status s = RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  const char* query = R"(
    EXPLORE memory_gb IN [16, 32, 64, 128, 224],
            disk IN ['hdd', 'ssd']
    SIMULATE provisioning
        WITH working_set_gb = 256, rate = 400,
             nodes = 4, duration_s = 120
    WHERE latency_p95_ms <= 30
    ORDER BY cost_monthly_usd ASC
  )";

  std::printf("Query:\n%s\n", query);
  auto result = RunQuery(&tunnel, query, "provisioning_sweep");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Sweep: %zu configurations, %zu executed, %zu pruned\n\n",
              result->stats.total_points, result->stats.executed,
              result->stats.pruned);

  auto view = result->satisfying.Project(
      {"memory_gb", "disk", "cache_hit_ratio", "latency_p95_ms",
       "cost_monthly_usd"});
  if (!view.ok()) {
    std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("Designs meeting the p95 <= 30 ms SLA, cheapest first:\n%s\n",
              view->ToCsv().c_str());

  if (view->num_rows() > 0) {
    std::printf("Recommendation: %s GB of memory on %s disks.\n",
                view->At(0, 0).ToString().c_str(),
                view->At(0, 1).ToString().c_str());
  } else {
    std::printf("No design meets the SLA; relax it or widen the space.\n");
  }
  return 0;
}
