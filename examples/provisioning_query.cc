// Hardware provisioning via a committed scenario file (§3, §4.1):
//
//   "Should I invest in storage or memory in order to satisfy the SLAs of
//    95% of my customers and minimize the total operating cost?"
//
// The experiment — memory x disk grid, workload, p95 SLA, cost ordering —
// is declared in scenarios/e4_provisioning.json and compiled by the
// scenario registry into the same QuerySpec the DSL front end produces
// (the equivalence is fingerprint-tested). This example loads the file,
// runs it, and prints the §4.2 pipeline's answer.
//
// Run: ./build-release/examples/example_provisioning_query

#include <cstdio>

#include "wt/query/builtin_sims.h"
#include "wt/query/executor.h"
#include "wt/scenario/scenario.h"

int main() {
  using namespace wt;

  auto path = scenario::FindScenarioPath("e4_provisioning");
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 1;
  }
  auto spec = scenario::LoadScenarioFile(*path);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  WindTunnelOptions options;
  if (spec->has_seed) options.seed = spec->seed;
  if (spec->replications > 0) options.replications = spec->replications;
  WindTunnel tunnel(options);
  if (Status s = RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("scenario '%s' [%s]:\n  %s\n\n", spec->name.c_str(),
              spec->query.scenario_hash.c_str(), spec->description.c_str());

  auto result = ExecuteQuery(&tunnel, spec->query, "provisioning_sweep");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Sweep: %zu configurations, %zu executed, %zu pruned\n\n",
              result->stats.total_points, result->stats.executed,
              result->stats.pruned);

  auto view = result->satisfying.Project(
      {"memory_gb", "disk", "cache_hit_ratio", "latency_p95_ms",
       "cost_monthly_usd"});
  if (!view.ok()) {
    std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("Designs meeting the p95 <= 30 ms SLA, cheapest first:\n%s\n",
              view->ToCsv().c_str());

  if (view->num_rows() > 0) {
    std::printf("Recommendation: %s GB of memory on %s disks.\n",
                view->At(0, 0).ToString().c_str(),
                view->At(0, 1).ToString().c_str());
  } else {
    std::printf("No design meets the SLA; relax it or widen the space.\n");
  }
  return 0;
}
