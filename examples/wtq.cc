// wtq — the wind tunnel query shell.
//
// Runs declarative what-if queries against the built-in simulations and
// prints the satisfying designs as CSV. One-shot:
//
//   ./build/examples/example_wtq "EXPLORE nodes IN [10,30] SIMULATE
//        static_availability WITH failures = 2 ORDER BY availability DESC"
//
// or interactively (reads one query per ';'-terminated block):
//
//   ./build/examples/example_wtq
//   wtq> EXPLORE replication IN [3, 5]
//    ... SIMULATE static_availability WITH nodes = 10, failures = 2;
//
// Useful meta-commands in interactive mode:
//   \tables          list stored sweep tables
//   \dump <table>    print a stored table as CSV
//   \sims            list registered simulations
//   \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "wt/common/string_util.h"
#include "wt/query/builtin_sims.h"
#include "wt/query/executor.h"

namespace {

void RunOne(wt::WindTunnel* tunnel, const std::string& text) {
  auto result = wt::RunQuery(tunnel, text);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("# sweep '%s': %zu points, %zu executed, %zu pruned, %zu errors\n",
              result->sweep_table.c_str(), result->stats.total_points,
              result->stats.executed, result->stats.pruned,
              result->stats.errors);
  std::printf("%s", result->satisfying.ToCsv().c_str());
}

void Meta(wt::WindTunnel* tunnel, const std::string& line) {
  if (line == "\\tables") {
    for (const std::string& name : tunnel->store().TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (line == "\\sims") {
    for (const std::string& name : tunnel->SimulationNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (wt::StrStartsWith(line, "\\dump ")) {
    auto table = tunnel->store().GetTableConst(
        std::string(wt::StrTrim(line.substr(6))));
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    std::printf("%s", (*table)->ToCsv().c_str());
    return;
  }
  std::printf("unknown meta-command: %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  wt::WindTunnel tunnel;
  if (wt::Status s = wt::RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }

  if (argc > 1) {
    std::string text;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) text += " ";
      text += argv[i];
    }
    RunOne(&tunnel, text);
    return 0;
  }

  std::printf("wind tunnel query shell — \\sims lists simulations, \\quit exits\n");
  std::string buffer;
  std::string line;
  std::printf("wtq> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(wt::StrTrim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Meta(&tunnel, trimmed);
      std::printf("wtq> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
    if (trimmed.ends_with(";")) {
      RunOne(&tunnel, buffer);
      buffer.clear();
      std::printf("wtq> ");
    } else {
      std::printf(" ... ");
    }
    std::fflush(stdout);
  }
  return 0;
}
