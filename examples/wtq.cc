// wtq — the wind tunnel query shell.
//
// Runs declarative what-if queries against the built-in simulations and
// prints the satisfying designs as CSV. One-shot:
//
//   ./build/examples/example_wtq "EXPLORE nodes IN [10,30] SIMULATE
//        static_availability WITH failures = 2 ORDER BY availability DESC"
//
// or interactively (reads one query per ';'-terminated block):
//
//   ./build/examples/example_wtq
//   wtq> EXPLORE replication IN [3, 5]
//    ... SIMULATE static_availability WITH nodes = 10, failures = 2;
//
// Observability flags (see DESIGN.md § Observability):
//   --profile        print per-stage timings (parse/plan/sweep/filter/order)
//                    after each query, EXPLAIN ANALYZE style
//   --trace <file>   record a Chrome trace of the whole session to <file>;
//                    open it at https://ui.perfetto.dev or chrome://tracing
//   --help           this summary
//
// Serving mode (DESIGN.md §8):
//   --serve <socket>    run as a query server on an AF_UNIX socket; repeated
//                       queries are answered from the sweep cache. Reads
//                       stdin for \cache / \quit; EOF shuts down.
//   --connect <socket>  run the shell against a server instead of locally
//                       (works one-shot with a QUERY argument too)
//
// Scenario mode (DESIGN.md §9):
//   --scenario <ref>    load a scenario file (a name from the scenarios/
//                       corpus or a path), boot a tunnel with its seed and
//                       replications, and answer its query end-to-end
//   --check             with --scenario: compile and validate only, print
//                       one "ok <name> ..." line, run nothing (CI's
//                       scenario-corpus job)
//
// Useful meta-commands in interactive mode:
//   \tables          list stored sweep tables
//   \dump <table>    print a stored table as CSV
//   \sims            list registered simulations
//   \scenarios       list the scenario corpus (name + description)
//   \dims [sim]      the dimension declaration table (defaults, families)
//   \cache           serve-cache statistics (hit/miss/in-flight; local
//                    registry in local mode, the server's in --connect)
//   \profile         toggle per-query profiling (same as --profile)
//   \quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "wt/common/string_util.h"
#include "wt/obs/metrics.h"
#include "wt/obs/obs.h"
#include "wt/obs/wallclock.h"
#include "wt/query/builtin_sims.h"
#include "wt/query/dimension_spec.h"
#include "wt/query/executor.h"
#include "wt/scenario/scenario.h"
#include "wt/serve/client.h"
#include "wt/serve/server.h"

namespace {

bool g_profile = false;

void PrintResult(const wt::QueryResult& result) {
  std::printf("# sweep '%s': %zu points, %zu executed, %zu pruned, %zu errors\n",
              result.sweep_table.c_str(), result.stats.total_points,
              result.stats.executed, result.stats.pruned,
              result.stats.errors);
  std::printf("%s", result.satisfying.ToCsv().c_str());
  if (g_profile) std::printf("%s", result.profile.ToText().c_str());
}

void RunOne(wt::WindTunnel* tunnel, const std::string& text) {
  // Parse, resolve USING SCENARIO references against the corpus, execute.
  const int64_t t0 = wt::obs::WallMicros();
  auto spec = wt::ParseQuery(text);
  if (spec.ok()) spec = wt::scenario::ResolveQuery(*spec);
  if (!spec.ok()) {
    std::printf("error: %s\n", spec.status().ToString().c_str());
    return;
  }
  const int64_t parse_us = wt::obs::WallMicros() - t0;
  auto result = wt::ExecuteQuery(tunnel, *spec);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  result->profile.parse_us = parse_us;
  result->profile.total_us += parse_us;
  PrintResult(*result);
}

// The local \cache view: serve.* instruments from this process's metrics
// registry (a Server running under --serve reports into it).
void PrintLocalCacheStats() {
  if (!wt::obs::MetricsEnabled()) {
    std::printf("(metrics registry disabled; serve stats live in the "
                "server process — use \\cache under --connect)\n");
    return;
  }
  const wt::obs::MetricsSnapshot snap =
      wt::obs::MetricsRegistry::Default().Snapshot();
  bool any = false;
  for (const wt::obs::MetricsSnapshotEntry& e : snap.entries) {
    if (!e.name.starts_with("serve.")) continue;
    any = true;
    if (e.kind == "latency") {
      std::printf("%-24s n=%lld p50=%.0f p95=%.0f max=%.0f\n",
                  e.name.c_str(), static_cast<long long>(e.value), e.p50,
                  e.p95, e.max);
    } else {
      std::printf("%-24s %lld\n", e.name.c_str(),
                  static_cast<long long>(e.value));
    }
  }
  if (!any) std::printf("(no serve.* metrics recorded yet)\n");
}

void Meta(wt::WindTunnel* tunnel, const std::string& line) {
  if (line == "\\cache") {
    PrintLocalCacheStats();
    return;
  }
  if (line == "\\tables") {
    for (const std::string& name : tunnel->store().TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (line == "\\sims") {
    for (const std::string& name : tunnel->SimulationNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (line == "\\scenarios") {
    const auto files = wt::scenario::ListScenarioFiles();
    if (files.empty()) {
      std::printf("(no scenario files under %s)\n",
                  wt::scenario::ScenarioDir().c_str());
      return;
    }
    for (const std::string& path : files) {
      auto spec = wt::scenario::LoadScenarioFile(path);
      if (spec.ok()) {
        std::printf("%-28s %s\n", spec->name.c_str(),
                    spec->description.c_str());
      } else {
        std::printf("%-28s error: %s\n", path.c_str(),
                    spec.status().ToString().c_str());
      }
    }
    return;
  }
  if (line == "\\dims" || wt::StrStartsWith(line, "\\dims ")) {
    const std::string sim =
        line.size() > 5 ? std::string(wt::StrTrim(line.substr(5))) : "";
    std::printf("%s", wt::RenderDimensionTable(sim).c_str());
    return;
  }
  if (line == "\\profile") {
    g_profile = !g_profile;
    std::printf("profile %s\n", g_profile ? "on" : "off");
    return;
  }
  if (wt::StrStartsWith(line, "\\dump ")) {
    auto table = tunnel->store().GetTableConst(
        std::string(wt::StrTrim(line.substr(6))));
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    std::printf("%s", (*table)->ToCsv().c_str());
    return;
  }
  std::printf("unknown meta-command: %s\n", line.c_str());
}

// --scenario: compile a scenario file and (unless --check) answer its
// query in a tunnel booted with the scenario's seed and replications.
int RunScenario(const std::string& ref, bool check_only) {
  auto path = wt::scenario::FindScenarioPath(ref);
  if (!path.ok()) {
    std::fprintf(stderr, "scenario: %s\n", path.status().ToString().c_str());
    return 1;
  }
  auto spec = wt::scenario::LoadScenarioFile(*path);
  if (!spec.ok()) {
    std::fprintf(stderr, "scenario: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  if (check_only) {
    size_t points = 1;
    for (const wt::Dimension& d : spec->query.dimensions) {
      points *= d.candidates.size();
    }
    std::printf("ok %s sim=%s hash=%s dims=%zu points=%zu ablations=%zu\n",
                spec->name.c_str(), spec->query.simulation.c_str(),
                spec->query.scenario_hash.c_str(),
                spec->query.dimensions.size(), points,
                spec->available_ablations.size());
    return 0;
  }
  wt::WindTunnelOptions options;
  if (spec->has_seed) options.seed = spec->seed;
  if (spec->replications > 0) options.replications = spec->replications;
  wt::WindTunnel tunnel(options);
  if (wt::Status s = wt::RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  auto result = wt::ExecuteQuery(&tunnel, spec->query, spec->name);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("# scenario '%s' (%s)\n", spec->name.c_str(),
              spec->query.scenario_hash.c_str());
  PrintResult(*result);
  return 0;
}

void PrintHelp() {
  std::printf(
      "usage: example_wtq [--profile] [--trace <file>] [--serve <socket>]\n"
      "                   [--connect <socket>] [--scenario <ref> [--check]]\n"
      "                   [--help] [QUERY]\n"
      "\n"
      "With a QUERY argument, runs it once and prints the satisfying rows\n"
      "as CSV. Without one, starts an interactive shell (queries end with\n"
      "';'; \\sims lists simulations, \\quit exits).\n"
      "\n"
      "  --profile        print per-stage timings (parse/plan/sweep/filter/\n"
      "                   order) after each query\n"
      "  --trace <file>   record a Chrome trace of the session to <file>\n"
      "                   (view at https://ui.perfetto.dev)\n"
      "  --serve <socket> serve queries on an AF_UNIX socket; identical\n"
      "                   (config, seed) queries are answered from the\n"
      "                   sweep cache. \\cache on stdin prints statistics;\n"
      "                   \\quit or EOF shuts down.\n"
      "  --connect <socket>  run against a --serve process instead of\n"
      "                   simulating locally (one-shot with QUERY, or the\n"
      "                   interactive shell; \\cache asks the server)\n"
      "  --scenario <ref> load a scenario file (corpus name or path), boot\n"
      "                   a tunnel with its seed/replications, and answer\n"
      "                   its query; DSL queries can reference the same\n"
      "                   files with USING SCENARIO \"<name>\"\n"
      "  --check          with --scenario: compile and validate only\n"
      "  --help           show this message\n"
      "\n"
      "The WT_TRACE / WT_METRICS environment variables are honored too:\n"
      "WT_TRACE=t.json is equivalent to --trace t.json, and\n"
      "WT_METRICS=m.json writes a metrics snapshot at exit.\n");
}

int RunServe(const std::string& socket_path) {
  // Serving is what the serve.* instruments exist for: record always.
  wt::obs::MetricsRegistry::Default().set_enabled(true);
  wt::WindTunnel tunnel;
  if (wt::Status s = wt::RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  wt::serve::ServerOptions options;
  options.num_workers = 2;
  wt::serve::Server server(&tunnel, options);
  if (wt::Status s = server.Listen(socket_path); !s.ok()) {
    std::fprintf(stderr, "serve: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on %s (\\cache for stats, \\quit or EOF to stop)\n",
              socket_path.c_str());
  std::fflush(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string trimmed(wt::StrTrim(line));
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (trimmed == "\\cache") {
      std::printf("%s", server.CacheStatsText().c_str());
    } else if (!trimmed.empty()) {
      std::printf("unknown command: %s (\\cache, \\quit)\n", trimmed.c_str());
    }
    std::fflush(stdout);
  }
  server.Shutdown();
  return 0;
}

int RunConnect(const std::string& socket_path, const std::string& one_shot) {
  auto client = wt::serve::Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  auto run = [&](const std::string& text) {
    auto reply = client->Query(text);
    if (!reply.ok()) {
      std::printf("error: %s\n", reply.status().ToString().c_str());
      return false;
    }
    // Header carries "ok <hit|miss|join> <rows> <wall_us>" or "err ...".
    std::printf("# %s\n%s", reply->header.c_str(), reply->payload.c_str());
    return true;
  };
  if (!one_shot.empty()) return run(one_shot) ? 0 : 1;

  std::printf("connected to %s — queries end with ';', \\cache for server "
              "stats, \\quit exits\n",
              socket_path.c_str());
  std::string buffer;
  std::string line;
  std::printf("wtq> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string trimmed(wt::StrTrim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\cache") {
        auto stats = client->Stats();
        if (stats.ok()) {
          std::printf("%s", stats->payload.c_str());
        } else {
          std::printf("error: %s\n", stats.status().ToString().c_str());
        }
      } else {
        std::printf("unknown meta-command here: %s\n", trimmed.c_str());
      }
      std::printf("wtq> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
    if (trimmed.ends_with(";")) {
      if (!run(buffer)) break;
      buffer.clear();
      std::printf("wtq> ");
    } else {
      std::printf(" ... ");
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Env-driven observability (WT_TRACE / WT_METRICS) first, so --trace can
  // layer on top of — or replace — what the environment asked for.
  wt::obs::EnvObsSession obs_session;
  wt::obs::SetThisThreadLabel("main");

  std::string trace_path;
  std::string query_text;
  std::string serve_path;
  std::string connect_path;
  std::string scenario_ref;
  bool scenario_check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintHelp();
      return 0;
    }
    if (std::strcmp(arg, "--profile") == 0) {
      g_profile = true;
      continue;
    }
    if (std::strcmp(arg, "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires a file argument\n");
        return 1;
      }
      trace_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--serve") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--serve requires a socket path\n");
        return 1;
      }
      serve_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--connect") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--connect requires a socket path\n");
        return 1;
      }
      connect_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--scenario") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--scenario requires a scenario name or file path\n");
        return 1;
      }
      scenario_ref = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--check") == 0) {
      scenario_check = true;
      continue;
    }
    if (wt::StrStartsWith(arg, "--")) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 1;
    }
    if (!query_text.empty()) query_text += " ";
    query_text += arg;
  }
  if (!serve_path.empty() && !connect_path.empty()) {
    std::fprintf(stderr, "--serve and --connect are mutually exclusive\n");
    return 1;
  }
  if (scenario_check && scenario_ref.empty()) {
    std::fprintf(stderr, "--check requires --scenario\n");
    return 1;
  }
  if (!scenario_ref.empty() &&
      (!serve_path.empty() || !connect_path.empty())) {
    std::fprintf(stderr,
                 "--scenario runs locally; under --connect send the query "
                 "'USING SCENARIO \"<name>\"' instead\n");
    return 1;
  }
  if (!serve_path.empty()) return RunServe(serve_path);
  if (!connect_path.empty()) return RunConnect(connect_path, query_text);
  if (!scenario_ref.empty()) return RunScenario(scenario_ref, scenario_check);
  if (!trace_path.empty()) wt::obs::TraceEmitter::Default().Start();

  // Writes the --trace file after the queries below have quiesced.
  auto finish_trace = [&trace_path] {
    if (trace_path.empty()) return;
    wt::obs::TraceEmitter::Default().Stop();
    wt::Status s = wt::obs::TraceEmitter::Default().WriteJson(trace_path);
    if (s.ok()) {
      std::printf("wrote trace %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
    }
  };

  wt::WindTunnel tunnel;
  if (wt::Status s = wt::RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!query_text.empty()) {
    RunOne(&tunnel, query_text);
    finish_trace();
    return 0;
  }

  std::printf("wind tunnel query shell — \\sims lists simulations, \\quit exits\n");
  std::string buffer;
  std::string line;
  std::printf("wtq> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(wt::StrTrim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Meta(&tunnel, trimmed);
      std::printf("wtq> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
    if (trimmed.ends_with(";")) {
      RunOne(&tunnel, buffer);
      buffer.clear();
      std::printf("wtq> ");
    } else {
      std::printf(" ... ");
    }
    std::fflush(stdout);
  }
  finish_trace();
  return 0;
}
