// The paper's motivating example (§1), run as a wind-tunnel experiment:
//
//   "In some environments, one can reduce the replication factor to n-1,
//    thereby decreasing the storage cost ... the latency of the repair
//    process can be reduced by using a faster network (hardware), or by
//    optimizing the repair algorithm (software), or both."
//
// We compare four designs of a 12-node cluster over two simulated years:
//   A. n=3 replicas, 1 GbE, sequential repair   (the "safe default")
//   B. n=2 replicas, 1 GbE, sequential repair   (naive cost cut)
//   C. n=2 replicas, 10 GbE, sequential repair  (faster hardware)
//   D. n=2 replicas, 10 GbE, 8-way parallel repair (hardware + software)
//
// Run: ./build/examples/example_availability_whatif

#include <cstdio>

#include "wt/common/string_util.h"
#include "wt/hw/cost.h"
#include "wt/sla/sla.h"
#include "wt/soft/availability_dynamic.h"

namespace {

struct Design {
  const char* label;
  int replication;
  double nic_gbps;
  int repair_parallel;
};

}  // namespace

int main() {
  using namespace wt;

  const Design designs[] = {
      {"A: n=3, 1GbE, sequential repair", 3, 1.0, 1},
      {"B: n=2, 1GbE, sequential repair", 2, 1.0, 1},
      {"C: n=2, 10GbE, sequential repair", 2, 10.0, 1},
      {"D: n=2, 10GbE, parallel repair x8", 2, 10.0, 8},
  };

  std::printf("12-node cluster, 2000 users x 20 GB, node AFR 30%%,\n");
  std::printf("2 simulated years. SLA: availability >= 99.99%%.\n\n");
  std::printf("%-36s %-14s %-12s %-14s %-10s\n", "design", "availability",
              "nines", "repair hours", "$/month");

  CostModel cost;
  for (const Design& d : designs) {
    DynamicAvailabilityConfig cfg;
    cfg.datacenter.num_racks = 1;
    cfg.datacenter.nodes_per_rack = 12;
    cfg.datacenter.node.nic.bandwidth_gbps = d.nic_gbps;
    cfg.storage.num_users = 2000;
    cfg.storage.object_size_gb = 20.0;
    cfg.storage.num_nodes = 12;
    cfg.redundancy = StrFormat("replication(%d)", d.replication);
    cfg.placement = "random";
    cfg.node_ttf = MakeTtfFromAfr(0.30, 0.8);  // Weibull wear profile
    cfg.node_replace = std::make_unique<LogNormalDist>(
        LogNormalDist::FromMoments(24.0, 12.0));
    cfg.repair.max_concurrent = d.repair_parallel;
    cfg.sim_years = 2.0;
    cfg.seed = 99;

    auto metrics = RunDynamicAvailability(cfg);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", d.label,
                   metrics.status().ToString().c_str());
      return 1;
    }
    // Storage cost scales with the replication factor; NIC upgrades move
    // the per-node cost.
    double monthly = cost.MonthlyCostUsd(cfg.datacenter) +
                     cost.MonthlyStorageCostUsd(
                         cfg.datacenter,
                         2000 * 20.0 * d.replication);
    std::printf("%-36s %-14.6f %-12.2f %-14.2f %-10.0f\n", d.label,
                metrics->availability(),
                AvailabilityToNines(metrics->availability()),
                metrics->repair_latency_hours.mean(), monthly);
  }

  std::printf(
      "\nReading: B shows why naively dropping a replica is dangerous; C and"
      "\nD recover most of the lost availability through faster repair while"
      "\nkeeping the ~1/3 storage saving — the hardware/software interaction"
      "\nthe paper argues must be explored jointly.\n");
  return 0;
}
