// The paper's motivating example (§1), run as a wind-tunnel experiment:
//
//   "In some environments, one can reduce the replication factor to n-1,
//    thereby decreasing the storage cost ... the latency of the repair
//    process can be reduced by using a faster network (hardware), or by
//    optimizing the repair algorithm (software), or both."
//
// The experiment definition lives in scenarios/whatif_repair_codesign.json:
// the replication x NIC x repair-parallelism grid, the monotone hints that
// let the orchestrator prune dominated designs, the three-nines SLA, and
// the cost ordering. This example loads it through the scenario registry
// and prints the answer — swap the JSON to ask a different what-if without
// recompiling.
//
// Run: ./build-release/examples/example_availability_whatif

#include <cstdio>

#include "wt/hw/cost.h"
#include "wt/query/builtin_sims.h"
#include "wt/query/executor.h"
#include "wt/scenario/scenario.h"
#include "wt/sla/sla.h"
#include "wt/store/table.h"

namespace {

double Num(const wt::Table& t, size_t row, const char* col) {
  return t.Get(row, col).value().ToNumeric().value();
}

}  // namespace

int main() {
  using namespace wt;

  auto path = scenario::FindScenarioPath("whatif_repair_codesign");
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 1;
  }
  auto spec = scenario::LoadScenarioFile(*path);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  WindTunnelOptions options;
  if (spec->has_seed) options.seed = spec->seed;
  if (spec->replications > 0) options.replications = spec->replications;
  WindTunnel tunnel(options);
  if (Status s = RegisterBuiltinSimulations(&tunnel); !s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("scenario '%s' [%s]: %s\n\n", spec->name.c_str(),
              spec->query.scenario_hash.c_str(), spec->description.c_str());
  std::printf("12-node cluster, 2000 users x 20 GB, node AFR 30%%,\n");
  std::printf("2 simulated years. SLA: availability >= 99.9%%.\n\n");

  auto result = ExecuteQuery(&tunnel, spec->query, spec->name);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Sweep: %zu designs, %zu executed, %zu pruned by the\n"
              "ASSUMING hints (paper §4.2 run ordering)\n\n",
              result->stats.total_points, result->stats.executed,
              result->stats.pruned);

  const Table& t = result->satisfying;
  std::printf("Designs meeting the SLA, cheapest first:\n");
  std::printf("%-4s %-8s %-9s %-14s %-8s %-14s %-10s\n", "n", "nic_gbps",
              "parallel", "availability", "nines", "repair hours",
              "$/month");
  CostModel cost;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    // The sweep's cost_monthly_usd is the hardware bill; storage scales
    // with the replication factor, so add that slice for the tradeoff.
    DatacenterConfig dc;
    dc.num_racks = static_cast<int>(Num(t, row, "racks"));
    dc.nodes_per_rack =
        static_cast<int>(Num(t, row, "nodes")) / dc.num_racks;
    double raw_gb = Num(t, row, "users") * Num(t, row, "object_gb") *
                    Num(t, row, "replication");
    double monthly = Num(t, row, "cost_monthly_usd") +
                     cost.MonthlyStorageCostUsd(dc, raw_gb);
    double availability = Num(t, row, "availability");
    std::printf("%-4d %-8.0f %-9d %-14.6f %-8.2f %-14.2f %-10.0f\n",
                static_cast<int>(Num(t, row, "replication")),
                Num(t, row, "nic_gbps"),
                static_cast<int>(Num(t, row, "repair_parallel")),
                availability, AvailabilityToNines(availability),
                Num(t, row, "mean_repair_hours"), monthly);
  }

  std::printf(
      "\nReading: n=2 alone is dangerous, but 10 GbE and parallel repair\n"
      "recover most of the lost availability while keeping the ~1/3 storage\n"
      "saving — the hardware/software interaction the paper argues must be\n"
      "explored jointly. The grid, hints, SLA and ordering all came from\n"
      "the scenario file.\n");
  return 0;
}
