// Data-driven models from operational logs (§4.4):
//
//   "transformation algorithms that convert log data into meaningful models
//    (e.g., probability distributions) that can be used by the wind tunnel,
//    must be developed."
//
// This example plays the role of an operator: it takes a cluster log (here
// synthesized from the published failure studies, see DESIGN.md §2), fits
// empirical TTF/repair distributions from it, and then runs the same
// availability scenario twice — once with a naive exponential assumption
// at the same mean, once with the log-driven models — to show how much the
// exponential shortcut misestimates availability (§2.2's argument).
//
// Run: ./build/examples/example_trace_driven_models

#include <cstdio>

#include "wt/soft/availability_dynamic.h"
#include "wt/workload/trace.h"

int main() {
  using namespace wt;

  // 1. An "operational log": 200 nodes, 10 years. Ground truth follows the
  //    published fits — Weibull TTF (shape 0.7, heavy infant mortality),
  //    lognormal repairs. The AFR is high (a worn fleet) so the target
  //    scenario below actually exercises the availability machinery.
  auto true_ttf = MakeTtfFromAfr(0.9, 0.7);
  LogNormalDist true_ttr = LogNormalDist::FromMoments(36.0, 30.0);
  auto log = GenerateFailureTrace(200, 10.0, *true_ttf, true_ttr, 4242);
  std::printf("synthesized operational log: %zu records\n", log.size());

  // 2. Fit distributions from the log (the wind-tunnel ingestion path).
  auto fitted_ttf = FitTimeToFailure(log);
  auto fitted_ttr = FitRepairTime(log);
  if (!fitted_ttf.ok() || !fitted_ttr.ok()) {
    std::fprintf(stderr, "fit failed\n");
    return 1;
  }
  std::printf("fitted TTF:    %s hours\n", fitted_ttf->ToString().c_str());
  std::printf("fitted repair: %s hours\n\n", fitted_ttr->ToString().c_str());

  // 3. Same scenario, two failure models at identical means.
  auto run = [&](const char* label, DistributionPtr ttf,
                 DistributionPtr ttr) {
    DynamicAvailabilityConfig cfg;
    cfg.datacenter.num_racks = 1;
    cfg.datacenter.nodes_per_rack = 16;
    // Modest repair bandwidth: re-replication windows are hours, so
    // failure clustering (or its absence) shows up in availability.
    cfg.datacenter.node.nic.bandwidth_gbps = 0.2;
    cfg.storage.num_users = 800;
    cfg.storage.object_size_gb = 10.0;
    cfg.storage.num_nodes = 16;
    cfg.redundancy = "replication(3)";
    cfg.placement = "random";
    cfg.node_ttf = std::move(ttf);
    cfg.node_replace = std::move(ttr);
    cfg.repair.max_concurrent = 4;
    cfg.sim_years = 6.0;
    cfg.seed = 31;
    auto m = RunDynamicAvailability(cfg);
    if (!m.ok()) {
      std::fprintf(stderr, "%s: %s\n", label, m.status().ToString().c_str());
      return;
    }
    std::printf(
        "%-28s unavailability=%.3g  events=%lld  lost=%lld  failures=%lld\n",
        label, m->mean_unavailable_fraction,
        static_cast<long long>(m->unavailability_events),
        static_cast<long long>(m->objects_lost),
        static_cast<long long>(m->node_failures));
  };

  run("log-driven (empirical)",
      DistributionPtr(fitted_ttf->Clone()),
      DistributionPtr(fitted_ttr->Clone()));
  run("exponential assumption",
      std::make_unique<ExponentialDist>(1.0 / fitted_ttf->Mean()),
      std::make_unique<DeterministicDist>(fitted_ttr->Mean()));

  std::printf(
      "\nReading: both runs share the fitted means, but the log-driven\n"
      "model keeps the Weibull/lognormal *shapes* the exponential shortcut\n"
      "throws away — and the event counts and availability diverge\n"
      "accordingly (paper §2.2). The pipeline (log -> fitted distribution\n"
      "-> simulation input) is what a real deployment would run on its own\n"
      "operational data.\n");
  return 0;
}
