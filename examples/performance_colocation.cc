// Performance SLAs under co-location and cluster events (§3):
//
//   "a performance prediction method that takes into account the impact of
//    other cluster events (e.g., hardware failures, control operations) on
//    workload performance, has not been proposed. Carefully designed,
//    holistic simulation ... can capture the impact of these events."
//
// Three runs of the same primary workload:
//   1. alone on the cluster,
//   2. co-located with a second tenant,
//   3. co-located, plus a node outage with re-replication I/O mid-run.
// An M/M/c prediction (which knows nothing about events) is printed next
// to the simulated numbers.
//
// Run: ./build/examples/example_performance_colocation

#include <cstdio>

#include "wt/analytics/queueing.h"
#include "wt/workload/perf_sim.h"

namespace {

wt::PerfWorkloadSpec Primary() {
  wt::PerfWorkloadSpec w;
  w.name = "primary";
  w.arrival_rate = 600.0;
  w.read_fraction = 0.95;
  w.disk_service_s = std::make_unique<wt::ExponentialDist>(1000.0 / 4.0);
  w.cpu_service_s = std::make_unique<wt::ExponentialDist>(1000.0 / 1.0);
  return w;
}

wt::PerfWorkloadSpec Tenant() {
  wt::PerfWorkloadSpec w;
  w.name = "tenant_b";
  w.arrival_rate = 400.0;
  w.read_fraction = 0.8;
  w.disk_service_s = std::make_unique<wt::ExponentialDist>(1000.0 / 4.0);
  w.cpu_service_s = std::make_unique<wt::ExponentialDist>(1000.0 / 1.0);
  return w;
}

void Report(const char* label, const wt::WorkloadResult& r) {
  std::printf("%-34s %9.1f %9.1f %9.1f %11.0f %8lld\n", label,
              r.latency_ms.P50(), r.latency_ms.P95(), r.latency_ms.P99(),
              r.throughput_per_s, static_cast<long long>(r.failed));
}

}  // namespace

int main() {
  using namespace wt;

  PerfSimConfig cfg;
  cfg.num_nodes = 4;
  cfg.cores_per_node = 8;
  cfg.disks_per_node = 2;
  cfg.replication = 3;
  cfg.duration_s = 600.0;
  cfg.warmup_s = 60.0;
  cfg.seed = 7;

  std::printf("4 nodes x (8 cores, 2 disks); primary: 600 req/s.\n\n");
  std::printf("%-34s %9s %9s %9s %11s %8s\n", "scenario", "p50 ms", "p95 ms",
              "p99 ms", "thru/s", "failed");

  {  // 1. alone
    std::vector<PerfWorkloadSpec> specs;
    specs.push_back(Primary());
    auto r = RunPerfSim(cfg, specs);
    if (!r.ok()) return 1;
    Report("1. primary alone", r->workloads.at("primary"));
  }
  {  // 2. co-located
    std::vector<PerfWorkloadSpec> specs;
    specs.push_back(Primary());
    specs.push_back(Tenant());
    auto r = RunPerfSim(cfg, specs);
    if (!r.ok()) return 1;
    Report("2. + co-located tenant", r->workloads.at("primary"));
  }
  {  // 3. co-located + outage + repair traffic
    std::vector<PerfWorkloadSpec> specs;
    specs.push_back(Primary());
    specs.push_back(Tenant());
    OutageEvent outage;
    outage.at_s = 200.0;
    outage.node = 0;
    outage.duration_s = 200.0;
    outage.repair_disk_jobs_per_s = 120.0;
    outage.repair_disk_service_s = 0.02;
    auto r = RunPerfSim(cfg, specs, {outage});
    if (!r.ok()) return 1;
    Report("3. + node outage w/ repair I/O", r->workloads.at("primary"));
  }

  // The event-blind analytic prediction: disks as one M/M/c per node.
  // Per-node disk arrivals: (reads + write fanout) / nodes.
  double disk_rate_per_node =
      (600.0 * 0.95 + 600.0 * 0.05 * 3 + 400.0 * 0.8 + 400.0 * 0.2 * 3) /
      4.0;
  MMc disks{.lambda = disk_rate_per_node, .mu = 1000.0 / 4.0, .c = 2};
  if (disks.Validate().ok()) {
    std::printf(
        "\nEvent-blind M/M/c prediction of mean disk stage: %.1f ms — it\n"
        "cannot anticipate scenario 3's failover + repair interference,\n"
        "which is the gap the wind tunnel closes.\n",
        disks.W() * 1000.0);
  }
  return 0;
}
